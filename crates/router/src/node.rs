//! The legacy router as a simulation node.
//!
//! One type models all three routers of the paper's lab (Fig. 4):
//!
//! * **R1** — the router being supercharged: BGP sessions (to its peers
//!   directly, or to the interposed controller), a flat FIB updated by
//!   the calibrated walker, dynamic ARP for (virtual) next-hops;
//! * **R2 / R3** — provider routers: originate a full feed, run BFD,
//!   forward delivered traffic to the measurement sink via a static
//!   route.
//!
//! The node wires together the substrates: BGP sessions ride reliable
//! channels over UDP, BFD rides raw UDP (port 3784), ARP rides Ethernet,
//! and the data plane does LPM → ARP → rewrite → forward with TTL and
//! checksum handling.

use crate::arp::{ArpClient, Resolution};
use crate::calibration::Calibration;
use crate::fib::{Fib, FibOp, FibWalker};
use crate::flowcache::{FlowCache, FlowCacheEntry};
use sc_bfd::{BfdConfig, BfdEvent, BfdSession};
use sc_bgp::msg::{BgpMessage, UpdateMsg};
use sc_bgp::session::{DownReason, Session, SessionConfig, SessionEvent};
use sc_bgp::{AdjRibOut, LocRib, PeerInfo};
use sc_net::channel::{ChannelConfig, ChannelEvent};
use sc_net::wire::udp::port as udp_port;
use sc_net::wire::{
    open_udp_frame, udp_frame, ArpOp, ArpRepr, EtherType, EthernetRepr, Ipv4Repr, UdpDatagram,
    UdpEndpoints,
};
use sc_net::{Frame, Ipv4Prefix, MacAddr, SimDuration, SimTime};
use sc_sim::{ChannelPort, Ctx, Node, PortId, TimerToken};
use std::any::Any;
use std::net::Ipv4Addr;

const TIMER_WALKER: TimerToken = TimerToken(0);
const TIMER_ARP: TimerToken = TimerToken(1);
const PEER_TIMER_BASE: u64 = 100;
const PEER_TIMER_STRIDE: u64 = 10;
const PEER_TIMER_CHANNEL: u64 = 0;
const PEER_TIMER_SESSION: u64 = 1;
const PEER_TIMER_BFD: u64 = 2;
const PEER_TIMER_DEADLINE: u64 = 3;

/// A router interface: one attachment to the network.
#[derive(Clone, Copy, Debug)]
pub struct Interface {
    pub port: PortId,
    pub ip: Ipv4Addr,
    pub mac: MacAddr,
    /// The connected subnet (next-hops inside it are reachable here).
    pub subnet: Ipv4Prefix,
}

/// A static route (installed at start, bypassing BGP).
#[derive(Clone, Copy, Debug)]
pub struct StaticRoute {
    pub prefix: Ipv4Prefix,
    pub next_hop: Ipv4Addr,
}

/// Per-peer configuration.
#[derive(Clone, Debug)]
pub struct PeerConfig {
    pub peer_ip: Ipv4Addr,
    /// Static L2 mapping for the peer's address (infrastructure MACs are
    /// configured, not discovered, in the paper's lab).
    pub peer_mac: MacAddr,
    /// LOCAL_PREF assigned by import policy to routes from this peer
    /// (how the paper makes R1 prefer R2 over R3).
    pub local_pref: u32,
    /// True if we initiate the transport connection.
    pub transport_active: bool,
    pub local_port: u16,
    pub remote_port: u16,
    /// BGP hold time for this session.
    pub hold_time: SimDuration,
    /// Run BFD with this peer.
    pub bfd: Option<BfdConfig>,
    /// Updates to announce once the session establishes (the provider
    /// routers originate the RIS feed through this).
    pub originate: Vec<UpdateMsg>,
    /// Which interface the peer is reached through.
    pub iface: usize,
    /// This session terminates at a supercharger controller replica.
    /// While *every* controller session is down (after having been up)
    /// the router is **degraded**: the legacy BGP path drives the FIB
    /// directly and nothing waits on FlowModify. The interval is
    /// tracked for the per-cycle `degraded_us` stat.
    pub controller: bool,
    /// Liveness watchdog: tear the session down if the peer sends
    /// nothing for this long while Established. Pairs with a peer that
    /// beacons sub-second keepalives (the supercharger's
    /// `echo_interval`) to detect controller death far inside the BGP
    /// hold floor. `None` (the default) leaves detection to the hold
    /// timer and BFD.
    pub deadline: Option<SimDuration>,
}

impl PeerConfig {
    /// A plain eBGP peer on interface 0 with default preferences.
    pub fn ebgp(peer_ip: Ipv4Addr, peer_mac: MacAddr, active: bool) -> PeerConfig {
        PeerConfig {
            peer_ip,
            peer_mac,
            local_pref: sc_bgp::decision::DEFAULT_LOCAL_PREF,
            transport_active: active,
            local_port: if active { 40000 } else { udp_port::BGP },
            remote_port: if active { udp_port::BGP } else { 40000 },
            hold_time: SimDuration::from_secs(90),
            bfd: None,
            originate: Vec::new(),
            iface: 0,
            controller: false,
            deadline: None,
        }
    }
}

/// Router-wide configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    pub name: String,
    pub asn: u16,
    pub router_id: Ipv4Addr,
    pub cal: Calibration,
}

/// Observable events, for tests and experiment drivers.
#[derive(Clone, PartialEq, Debug)]
pub enum RouterEvent {
    PeerUp(Ipv4Addr),
    /// A session left Established, with why: BFD-triggered dataplane
    /// failure ([`DownReason::BfdDown`]) is distinguishable from admin
    /// shutdown, hold-timer expiry, and received NOTIFICATIONs.
    PeerDown {
        peer: Ipv4Addr,
        reason: DownReason,
    },
    /// The Adj-RIB-Out was (re-)announced over a freshly Established
    /// session; one event per establishment.
    FeedAnnounced {
        peer: Ipv4Addr,
        messages: usize,
    },
    /// Every controller-marked session is down: the router stopped
    /// waiting on the supercharger and the legacy path owns the FIB.
    DegradedEnter,
    /// A controller session re-established; supercharging resumes.
    DegradedExit,
    /// A non-controller peer died while controller routes still owned
    /// the FIB: the router installed fallback next-hops over them
    /// without tearing the controller sessions down (the controller may
    /// be healthy and about to repair the data plane itself — or dead,
    /// in which case waiting for the liveness deadline would concede
    /// the race legacy BGP wins at BFD speed).
    FallbackOverrideEnter,
    /// Fresh controller liveness evidence arrived (or degradation made
    /// the override moot): controller routes own the FIB again.
    FallbackOverrideExit,
}

/// Data-plane and control-plane counters.
#[derive(Clone, Copy, Default, Debug)]
pub struct RouterStats {
    pub forwarded: u64,
    pub local_delivered: u64,
    pub dropped_no_route: u64,
    pub dropped_ttl: u64,
    pub dropped_malformed: u64,
    pub dropped_no_iface: u64,
    pub arp_replies_sent: u64,
    pub updates_processed: u64,
}

struct PeerState {
    cfg: PeerConfig,
    chan: ChannelPort,
    session: Session,
    bfd: Option<BfdSession>,
    session_wakeup_armed: Option<SimTime>,
    bfd_wakeup_armed: Option<SimTime>,
    /// Last instant any transport traffic arrived from this peer (feeds
    /// the liveness watchdog when `cfg.deadline` is set).
    last_heard: SimTime,
    /// Due time of the one outstanding watchdog timer, if armed.
    deadline_armed: Option<SimTime>,
    /// What we advertise to this peer (RFC 4271 §3.2): seeded from
    /// `cfg.originate`, mutated by [`LegacyRouter::inject_updates`], and
    /// replayed in full on *every* session establishment — the RFC 4271
    /// §9.4 restart behavior the old one-shot `feed_sent` latch broke.
    adj_out: AdjRibOut,
    /// Establishment counter (diagnostics; feed replays once per epoch).
    establishments: u32,
    /// RIB already purged for the current down event (avoid double
    /// withdrawal when BFD and the hold timer both fire).
    purged: bool,
}

/// The router node.
pub struct LegacyRouter {
    cfg: RouterConfig,
    interfaces: Vec<Interface>,
    static_routes: Vec<StaticRoute>,
    peers: Vec<PeerState>,
    rib: LocRib,
    fib: Fib,
    walker: FibWalker,
    walker_armed: bool,
    arp: ArpClient,
    arp_timer_armed: bool,
    /// The dst-IP → (out-port, rewritten MAC) memo consulted before the
    /// LPM trie; see [`crate::flowcache`] for the invalidation rules.
    flow_cache: FlowCache,
    /// Diagnostics knob: `false` forces every packet down the LPM slow
    /// path. The determinism regression tests flip this to prove the
    /// cache never changes a forwarding decision.
    flow_cache_enabled: bool,
    /// Diagnostics knob mirroring `flow_cache_enabled`: `false` routes
    /// every outgoing message through the original fresh-`Vec` encode
    /// path. The wire bytes must be identical either way (regression-
    /// tested); the perf baseline runs use it to reconstruct the
    /// pre-refactor control path.
    zero_alloc_encode: bool,
    /// Reusable FIB-op scratch shared by all UPDATE processing.
    ops_buf: Vec<FibOp>,
    /// Reusable batch buffer for walker ticks.
    walker_batch_buf: Vec<FibOp>,
    /// Did any controller-marked session ever establish? Degradation is
    /// only entered after supercharging was actually in force — a world
    /// that never had a live controller is just legacy, not degraded.
    controller_was_up: bool,
    /// Open degraded interval, if the router is degraded right now.
    degraded_since: Option<SimTime>,
    /// Closed degraded intervals (enter, exit).
    degraded_log: Vec<(SimTime, SimTime)>,
    /// FIB shadow override in force: controller routes are still in the
    /// RIB (sessions up), but the FIB points at fallback next-hops.
    fib_shadow: bool,
    /// Prefixes the shadow override rewrote (what an exit must revert).
    shadow_overridden: Vec<Ipv4Prefix>,
    pub stats: RouterStats,
    pub events: Vec<(SimTime, RouterEvent)>,
}

impl LegacyRouter {
    pub fn new(cfg: RouterConfig) -> LegacyRouter {
        let cal = cfg.cal;
        let jitter_seed = u64::from(u32::from(cfg.router_id));
        LegacyRouter {
            cfg,
            interfaces: Vec::new(),
            static_routes: Vec::new(),
            peers: Vec::new(),
            rib: LocRib::new(),
            fib: Fib::new(),
            walker: FibWalker::new(cal, jitter_seed),
            walker_armed: false,
            arp: ArpClient::new(),
            arp_timer_armed: false,
            flow_cache: FlowCache::new(),
            flow_cache_enabled: true,
            zero_alloc_encode: true,
            ops_buf: Vec::new(),
            walker_batch_buf: Vec::new(),
            controller_was_up: false,
            degraded_since: None,
            degraded_log: Vec::new(),
            fib_shadow: false,
            shadow_overridden: Vec::new(),
            stats: RouterStats::default(),
            events: Vec::new(),
        }
    }

    /// Attach an interface (topology builder, after `World::connect`).
    pub fn add_interface(&mut self, iface: Interface) -> usize {
        self.interfaces.push(iface);
        self.interfaces.len() - 1
    }

    /// Install a static route (takes effect at start, no walker delay —
    /// statics are part of the boot configuration).
    pub fn add_static_route(&mut self, route: StaticRoute) {
        self.static_routes.push(route);
    }

    /// Configure a permanent ARP entry (infrastructure neighbors like
    /// the measurement sink).
    pub fn add_static_arp(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp.add_static(ip, mac);
        self.flow_cache.invalidate_next_hop(ip);
    }

    /// Disable (or re-enable) the forwarding flow cache. Every packet
    /// then takes the full LPM → interface-scan → ARP path; forwarding
    /// decisions must be identical either way (regression-tested).
    pub fn set_flow_cache_enabled(&mut self, enabled: bool) {
        self.flow_cache_enabled = enabled;
        if !enabled {
            self.flow_cache = FlowCache::new();
        }
    }

    /// The forwarding flow cache (hit/invalidation counters).
    pub fn flow_cache(&self) -> &FlowCache {
        &self.flow_cache
    }

    /// Disable (or re-enable) the zero-alloc BGP encode path. The wire
    /// bytes are identical either way — determinism-regression tested —
    /// so this only changes allocation behavior (perf baselines).
    pub fn set_zero_alloc_encode(&mut self, enabled: bool) {
        self.zero_alloc_encode = enabled;
    }

    /// Configure a BGP peer. Must be called before the world starts.
    pub fn add_peer(&mut self, cfg: PeerConfig) {
        let iface = self.interfaces[cfg.iface];
        let addr = UdpEndpoints {
            src_mac: iface.mac,
            dst_mac: cfg.peer_mac,
            src_ip: iface.ip,
            dst_ip: cfg.peer_ip,
            src_port: cfg.local_port,
            dst_port: cfg.remote_port,
        };
        let idx = self.peers.len();
        let timer =
            TimerToken(PEER_TIMER_BASE + idx as u64 * PEER_TIMER_STRIDE + PEER_TIMER_CHANNEL);
        let chan = if cfg.transport_active {
            ChannelPort::connect(ChannelConfig::default(), addr, iface.port, timer)
        } else {
            ChannelPort::listen(ChannelConfig::default(), addr, iface.port, timer)
        };
        let session = Session::new(SessionConfig {
            local_as: self.cfg.asn,
            router_id: self.cfg.router_id,
            hold_time: cfg.hold_time,
        });
        let bfd = cfg.bfd.map(BfdSession::new);
        // Infrastructure MACs are statically configured.
        self.arp.add_static(cfg.peer_ip, cfg.peer_mac);
        let adj_out = AdjRibOut::from_updates(&cfg.originate);
        self.peers.push(PeerState {
            cfg,
            chan,
            session,
            bfd,
            session_wakeup_armed: None,
            bfd_wakeup_armed: None,
            last_heard: SimTime::ZERO,
            deadline_armed: None,
            adj_out,
            establishments: 0,
            purged: false,
        });
    }

    /// Queue additional UPDATEs on every Established session — runtime
    /// route churn, beyond the static `originate` feed sent at session
    /// establishment. Scenario drivers use this for withdraw/churn
    /// bursts mid-experiment.
    ///
    /// Returns the session wake tokens the caller must schedule via
    /// [`sc_sim::World::wake_node`] so the messages leave immediately
    /// instead of waiting for the next keepalive tick.
    pub fn inject_updates(&mut self, updates: &[UpdateMsg]) -> Vec<TimerToken> {
        let mut tokens = Vec::new();
        for (idx, p) in self.peers.iter_mut().enumerate() {
            // The Adj-RIB-Out is the advertised *intent* and tracks
            // every injection even while the session is down — a later
            // restart must replay the current state (with mid-outage
            // withdrawals applied), not the boot-time feed.
            for upd in updates {
                p.adj_out.apply(upd);
            }
            if p.session.state() != sc_bgp::SessionState::Established {
                continue;
            }
            for upd in updates {
                for part in upd.clone().split_to_fit() {
                    p.session.queue_update(part);
                }
            }
            tokens.push(TimerToken(
                PEER_TIMER_BASE + idx as u64 * PEER_TIMER_STRIDE + PEER_TIMER_SESSION,
            ));
        }
        tokens
    }

    // ------------------------------------------------------ inspection

    /// Fold this router's lifetime counters — data plane, flow cache,
    /// every peer's BGP and BFD session — into a metrics registry. Call
    /// once, after a run: the counters are totals, not deltas.
    pub fn fold_metrics(&self, reg: &mut sc_net::metrics::Registry) {
        reg.add("router.forwarded", self.stats.forwarded);
        reg.add("router.local_delivered", self.stats.local_delivered);
        reg.add("router.dropped_no_route", self.stats.dropped_no_route);
        reg.add("router.updates_processed", self.stats.updates_processed);
        reg.add("flowcache.hits", self.flow_cache.hits);
        reg.add("flowcache.misses", self.flow_cache.misses);
        reg.add("flowcache.invalidated", self.flow_cache.invalidated);
        for p in &self.peers {
            p.session.fold_metrics(reg);
            if let Some(bfd) = &p.bfd {
                bfd.fold_metrics(reg);
            }
        }
    }

    pub fn fib(&self) -> &Fib {
        &self.fib
    }

    /// The configured interfaces, in `add_interface` order — read-only
    /// introspection for observers replaying the forwarding decision
    /// (interface index positions match [`Self::iface_for_nexthop`]).
    pub fn interfaces(&self) -> &[Interface] {
        &self.interfaces
    }

    /// Read-only view of the ARP cache (static entries, learned entries
    /// subject to expiry at `now`) — unlike the forwarding path's
    /// resolve, this never queues a request or parks a frame.
    pub fn arp(&self) -> &ArpClient {
        &self.arp
    }

    pub fn rib(&self) -> &LocRib {
        &self.rib
    }

    pub fn walker(&self) -> &FibWalker {
        &self.walker
    }

    /// True when every configured session is Established and the FIB
    /// walker is quiescent (the lab's "fully converged" predicate).
    pub fn is_quiescent(&self) -> bool {
        self.walker.is_quiescent()
    }

    /// BFD state and currently negotiated detection time for a peer
    /// (experiments wait for `Up` with a fast detection time before
    /// injecting failures, as a long-running lab would be).
    pub fn bfd_snapshot(
        &self,
        peer_ip: Ipv4Addr,
    ) -> Option<(sc_bfd::BfdState, sc_net::SimDuration)> {
        let p = self.peers.iter().find(|p| p.cfg.peer_ip == peer_ip)?;
        let bfd = p.bfd.as_ref()?;
        Some((bfd.state(), bfd.detection_time()))
    }

    /// BFD packet counters toward a peer (diagnostics).
    pub fn bfd_counters(&self, peer_ip: Ipv4Addr) -> Option<(u64, u64)> {
        let p = self.peers.iter().find(|p| p.cfg.peer_ip == peer_ip)?;
        let bfd = p.bfd.as_ref()?;
        Some((bfd.packets_sent, bfd.packets_received))
    }

    pub fn peer_session_state(&self, peer_ip: Ipv4Addr) -> Option<sc_bgp::SessionState> {
        self.peers
            .iter()
            .find(|p| p.cfg.peer_ip == peer_ip)
            .map(|p| p.session.state())
    }

    /// How many times the session toward `peer_ip` reached Established
    /// (1 after boot; +1 per RFC 4271 restart cycle).
    pub fn peer_establishments(&self, peer_ip: Ipv4Addr) -> Option<u32> {
        self.peers
            .iter()
            .find(|p| p.cfg.peer_ip == peer_ip)
            .map(|p| p.establishments)
    }

    /// Current Adj-RIB-Out size toward `peer_ip` (what a restart replays).
    pub fn adj_rib_out_len(&self, peer_ip: Ipv4Addr) -> Option<usize> {
        self.peers
            .iter()
            .find(|p| p.cfg.peer_ip == peer_ip)
            .map(|p| p.adj_out.len())
    }

    /// Is the router degraded right now (all controller-marked sessions
    /// down after supercharging had been in force)?
    pub fn degraded(&self) -> bool {
        self.degraded_since.is_some()
    }

    /// Every degraded interval so far, the currently open one capped at
    /// `now`. The runner intersects these with cycle windows for the
    /// per-cycle `degraded_us` column.
    pub fn degraded_intervals(&self, now: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut v = self.degraded_log.clone();
        if let Some(s) = self.degraded_since {
            if now > s {
                v.push((s, now));
            }
        }
        v
    }

    /// No controller-marked session is Established (vacuously false with
    /// none configured).
    fn controller_sessions_all_down(&self) -> bool {
        let mut any = false;
        for p in &self.peers {
            if p.cfg.controller {
                any = true;
                if p.session.state() == sc_bgp::SessionState::Established {
                    return false;
                }
            }
        }
        any
    }

    /// Is the FIB shadow override in force (fallback next-hops installed
    /// over still-present controller routes)?
    pub fn fib_shadow(&self) -> bool {
        self.fib_shadow
    }

    /// Any controller-marked session currently Established.
    fn controller_established(&self) -> bool {
        self.peers
            .iter()
            .any(|p| p.cfg.controller && p.session.state() == sc_bgp::SessionState::Established)
    }

    /// Liveness evidence for the peer at `peer_ip` is stale: its BFD
    /// session (if any) is Down, or Up but silent past half the
    /// detection time. Peers without BFD are never stale — the hold
    /// timer is their only truth.
    fn peer_bfd_stale(&self, peer_ip: Ipv4Addr, now: SimTime) -> bool {
        self.peers
            .iter()
            .find(|p| p.cfg.peer_ip == peer_ip)
            .and_then(|p| p.bfd.as_ref())
            .map(|bfd| bfd.is_stale(now))
            .unwrap_or(false)
    }

    /// The next-hop degraded-mode route selection would install for
    /// `prefix`: the best RIB candidate that is neither from a
    /// controller-marked peer nor from a peer whose BFD has gone quiet
    /// (see [`BfdSession::is_stale`]). Falls back to the unfiltered best
    /// when every candidate is suspect — a stale route beats no route.
    fn fallback_nh(&self, prefix: Ipv4Prefix, now: SimTime) -> Option<Ipv4Addr> {
        let candidates = self.rib.candidates(prefix);
        candidates
            .iter()
            .find(|r| {
                let from_controller = self
                    .peers
                    .iter()
                    .any(|p| p.cfg.controller && p.cfg.peer_ip == r.from.peer);
                !from_controller && !self.peer_bfd_stale(r.from.peer, now)
            })
            .or_else(|| candidates.first())
            .map(|r| r.next_hop())
    }

    /// A non-controller peer just died while controller routes own the
    /// FIB: install fallback next-hops *over* them without touching the
    /// controller sessions. If the controller is alive it repairs the
    /// data plane itself within its detection time and its next sign of
    /// life reverts the override; if it is dead, the data plane is
    /// already converging at the same BFD-paced instant legacy would —
    /// the liveness deadline then only formalizes the degradation.
    fn shadow_enter(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        let mut ops: Vec<FibOp> = Vec::new();
        let mut overridden = Vec::new();
        for (prefix, routes) in self.rib.iter() {
            let Some(best) = routes.first() else { continue };
            let best_is_controller = self
                .peers
                .iter()
                .any(|p| p.cfg.controller && p.cfg.peer_ip == best.from.peer);
            if !best_is_controller {
                continue;
            }
            let eff = self.fallback_nh(prefix, now);
            if let Some(nh) = eff {
                if nh != best.next_hop() {
                    ops.push(FibOp::Set {
                        prefix,
                        next_hop: nh,
                    });
                    overridden.push(prefix);
                }
            }
        }
        self.fib_shadow = true;
        self.shadow_overridden = overridden;
        self.events.push((now, RouterEvent::FallbackOverrideEnter));
        ctx.metrics().inc("router.shadow_enters");
        ctx.trace_instant(
            "bgp",
            "shadow.enter",
            0,
            self.shadow_overridden.len() as u64,
            || {
                format!(
                    "fallback override: {} prefixes shadowed",
                    self.shadow_overridden.len()
                )
            },
        );
        if !ops.is_empty() {
            ctx.trace_instant("program", "fib.burst", 0, ops.len() as u64, String::new);
            // Same delay class as a session-loss purge: the override is
            // this router's answer to the same failure legacy answers
            // with a purge, so it must not be cheaper.
            self.walker.enqueue_burst(now, ops, true);
            self.arm_walker(ctx);
        }
    }

    /// Fresh controller liveness evidence: put the controller routes
    /// back in charge of every prefix the shadow override rewrote.
    fn shadow_exit(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        self.fib_shadow = false;
        let overridden = std::mem::take(&mut self.shadow_overridden);
        let ops: Vec<FibOp> = overridden
            .into_iter()
            .filter_map(|prefix| {
                self.rib.best(prefix).map(|r| FibOp::Set {
                    prefix,
                    next_hop: r.next_hop(),
                })
            })
            .collect();
        self.events.push((now, RouterEvent::FallbackOverrideExit));
        ctx.trace_instant("bgp", "shadow.exit", 0, ops.len() as u64, || {
            format!("fallback override lifted: {} prefixes", ops.len())
        });
        if !ops.is_empty() {
            ctx.trace_instant("program", "fib.burst", 0, ops.len() as u64, String::new);
            self.walker.enqueue_burst(now, ops, false);
            self.arm_walker(ctx);
        }
    }

    // --------------------------------------------------------- helpers

    fn iface_for_nexthop(&self, nh: Ipv4Addr) -> Option<usize> {
        self.interfaces.iter().position(|i| i.subnet.contains(nh))
    }

    fn is_local_ip(&self, ip: Ipv4Addr) -> bool {
        self.interfaces.iter().any(|i| i.ip == ip)
    }

    fn arm_walker(&mut self, ctx: &mut Ctx) {
        if self.walker_armed {
            return;
        }
        if let Some(at) = self.walker.next_apply_at() {
            self.walker_armed = true;
            ctx.set_timer_at(at, TIMER_WALKER);
        }
    }

    fn arm_arp_timer(&mut self, ctx: &mut Ctx) {
        if !self.arp_timer_armed && self.arp.pending_count() > 0 {
            self.arp_timer_armed = true;
            ctx.set_timer_after(SimDuration::from_secs(1), TIMER_ARP);
        }
    }

    fn send_arp_request(&mut self, ctx: &mut Ctx, iface_idx: usize, target: Ipv4Addr) {
        let iface = self.interfaces[iface_idx];
        let req = ArpRepr::request(iface.mac, iface.ip, target);
        let frame = EthernetRepr {
            dst: MacAddr::BROADCAST,
            src: iface.mac,
            ethertype: EtherType::Arp,
        }
        .to_frame(&req.to_bytes());
        ctx.send_frame(iface.port, frame);
    }

    /// Drain a peer's session output into its channel and re-arm timers.
    fn pump_peer(&mut self, idx: usize, ctx: &mut Ctx) {
        let peer = &mut self.peers[idx];
        while let Some(msg) = peer.session.poll_transmit() {
            if self.zero_alloc_encode {
                // Hot path: encode straight into a recycled channel
                // buffer — no allocation and no copy per message.
                let mut buf = peer.chan.take_buffer();
                msg.encode_into(&mut buf);
                peer.chan.send(buf);
            } else {
                peer.chan.send(msg.encode());
            }
        }
        peer.chan.flush(ctx);
        if let Some(at) = peer.session.next_wakeup() {
            if peer.session_wakeup_armed != Some(at) {
                peer.session_wakeup_armed = Some(at);
                let token = TimerToken(
                    PEER_TIMER_BASE + idx as u64 * PEER_TIMER_STRIDE + PEER_TIMER_SESSION,
                );
                ctx.set_timer_at(at, token);
            }
        }
    }

    fn pump_bfd(&mut self, idx: usize, ctx: &mut Ctx) {
        let now = ctx.now();
        let Some(bfd) = self.peers[idx].bfd.as_mut() else {
            return;
        };
        let (events, packets) = bfd.poll(now);
        let next = bfd.next_wakeup();
        let (peer_ip, peer_mac, iface_idx) = {
            let c = &self.peers[idx].cfg;
            (c.peer_ip, c.peer_mac, c.iface)
        };
        let iface = self.interfaces[iface_idx];
        for pkt in packets {
            let frame = udp_frame(
                UdpEndpoints {
                    src_mac: iface.mac,
                    dst_mac: peer_mac,
                    src_ip: iface.ip,
                    dst_ip: peer_ip,
                    src_port: udp_port::BFD_CONTROL,
                    dst_port: udp_port::BFD_CONTROL,
                },
                255,
                &pkt.to_bytes(),
            );
            ctx.send_frame(iface.port, frame);
        }
        if let Some(at) = next {
            if self.peers[idx].bfd_wakeup_armed != Some(at) {
                self.peers[idx].bfd_wakeup_armed = Some(at);
                let token =
                    TimerToken(PEER_TIMER_BASE + idx as u64 * PEER_TIMER_STRIDE + PEER_TIMER_BFD);
                ctx.set_timer_at(at, token);
            }
        }
        for ev in events {
            self.on_bfd_event(idx, ev, ctx);
        }
    }

    /// Arm the liveness watchdog for a deadline-configured peer (one
    /// outstanding timer; the fire handler re-arms while traffic keeps
    /// arriving).
    fn arm_peer_deadline(&mut self, idx: usize, ctx: &mut Ctx) {
        let Some(d) = self.peers[idx].cfg.deadline else {
            return;
        };
        let due = self.peers[idx].last_heard + d;
        if self.peers[idx].deadline_armed.is_none() {
            self.peers[idx].deadline_armed = Some(due);
            ctx.set_timer_at(
                due,
                TimerToken(PEER_TIMER_BASE + idx as u64 * PEER_TIMER_STRIDE + PEER_TIMER_DEADLINE),
            );
        }
    }

    /// The watchdog fired: if traffic arrived since arming, re-arm at
    /// the pushed-out due time; otherwise the peer has gone silent past
    /// its deadline — tear the session down now (same teardown as BFD)
    /// instead of waiting out the hold timer.
    fn check_peer_deadline(&mut self, idx: usize, ctx: &mut Ctx) {
        self.peers[idx].deadline_armed = None;
        let Some(d) = self.peers[idx].cfg.deadline else {
            return;
        };
        if self.peers[idx].session.state() != sc_bgp::SessionState::Established {
            return; // re-armed on the next establishment
        }
        if ctx.now() < self.peers[idx].last_heard + d {
            self.arm_peer_deadline(idx, ctx);
            return;
        }
        let peer_ip = self.peers[idx].cfg.peer_ip;
        ctx.metrics().inc("router.liveness_expiries");
        ctx.trace_instant("detect", "liveness.expired", idx as u64, 0, || {
            format!("peer {peer_ip} silent past liveness deadline")
        });
        self.peers[idx].session.stop(DownReason::LivenessExpired);
        self.peer_down(idx, DownReason::LivenessExpired, ctx);
        // Drop the transport like a BFD-triggered reset: the active
        // side's reconnect SYN retries until the peer returns, and the
        // fresh establishment replays the Adj-RIB-Out (reconciliation).
        self.peers[idx].chan.reset();
        self.pump_peer(idx, ctx);
    }

    fn on_bfd_event(&mut self, idx: usize, ev: BfdEvent, ctx: &mut Ctx) {
        match ev {
            BfdEvent::Up => {}
            BfdEvent::Down(_diag) => {
                // BFD says the peer's forwarding plane is gone: declare
                // the BGP session down without waiting for the hold
                // timer (that is BFD's whole purpose).
                let peer_ip = self.peers[idx].cfg.peer_ip;
                ctx.metrics().inc("router.bfd_downs");
                ctx.trace_instant("detect", "bfd.down", idx as u64, 0, || {
                    format!("peer {peer_ip} down (bfd)")
                });
                self.peers[idx].session.stop(DownReason::BfdDown);
                self.peer_down(idx, DownReason::BfdDown, ctx);
                // The transport restarts too (BGP drops its TCP
                // connection on session reset); the active side's SYN
                // retries until the peer is reachable again, at which
                // point Connected → session restart → feed replay.
                self.peers[idx].chan.reset();
                self.pump_peer(idx, ctx);
            }
        }
    }

    /// Dispatch a batch of session events. Consecutive UPDATEs — the
    /// co-timed runs a full-feed replay or churn burst delivers in one
    /// datagram batch — are handed to [`LegacyRouter::process_updates`]
    /// as one batch (shared scratch buffers, one pass over the RIB per
    /// message); interleaved non-UPDATE events flush the pending batch
    /// first so observable ordering is unchanged.
    fn handle_session_events(&mut self, idx: usize, events: Vec<SessionEvent>, ctx: &mut Ctx) {
        let mut updates: Vec<UpdateMsg> = Vec::new();
        for ev in events {
            if !matches!(ev, SessionEvent::Update(_)) && !updates.is_empty() {
                self.process_updates(idx, std::mem::take(&mut updates), ctx);
            }
            match ev {
                SessionEvent::Established(_open) => {
                    let peer_ip = self.peers[idx].cfg.peer_ip;
                    self.peers[idx].purged = false;
                    self.peers[idx].establishments += 1;
                    if self.peers[idx].cfg.controller {
                        self.controller_was_up = true;
                        if let Some(since) = self.degraded_since.take() {
                            // Reconciliation: the returning controller
                            // replays its announced state over this fresh
                            // session; normal UPDATE processing resyncs
                            // the RIB from there.
                            self.degraded_log.push((since, ctx.now()));
                            self.events.push((ctx.now(), RouterEvent::DegradedExit));
                            ctx.trace_instant("bgp", "degraded.exit", 0, 0, String::new);
                        }
                    }
                    self.events.push((ctx.now(), RouterEvent::PeerUp(peer_ip)));
                    self.peers[idx].last_heard = ctx.now();
                    self.arm_peer_deadline(idx, ctx);
                    ctx.trace_instant("bgp", "session.up", idx as u64, 0, || {
                        format!("session with {peer_ip} established")
                    });
                    // RFC 4271 §9.4: advertise the Adj-RIB-Out on every
                    // establishment — including re-establishments after
                    // a flap, which the old `feed_sent` latch skipped.
                    if !self.peers[idx].adj_out.is_empty() {
                        let feed = self.peers[idx].adj_out.export();
                        let n = feed.len();
                        for part in feed {
                            self.peers[idx].session.queue_update(part);
                        }
                        self.events.push((
                            ctx.now(),
                            RouterEvent::FeedAnnounced {
                                peer: peer_ip,
                                messages: n,
                            },
                        ));
                    }
                }
                SessionEvent::Down(reason) => {
                    self.peer_down(idx, reason, ctx);
                    // Best-effort delivery of any final NOTIFICATION
                    // over the dying transport, then drop the connection
                    // (BGP closes the TCP connection after a session
                    // reset); the next flush starts the reconnect.
                    self.pump_peer(idx, ctx);
                    self.peers[idx].chan.reset();
                }
                SessionEvent::Update(upd) => {
                    updates.push(upd);
                }
            }
        }
        if !updates.is_empty() {
            self.process_updates(idx, updates, ctx);
        }
    }

    /// Apply a batch of received UPDATEs to the RIB and queue FIB work.
    ///
    /// Timing semantics are identical to processing each message alone:
    /// every message still pays its own [`FibWalker::enqueue_burst`]
    /// update-processing delay and arms the walker at the same instants.
    /// What the batch saves is kernel work — one shared FIB-op scratch,
    /// one ranked-insert pass over the RIB per message via
    /// [`LocRib::apply_update_batch`] — not modeled hardware time.
    fn process_updates(&mut self, idx: usize, updates: Vec<UpdateMsg>, ctx: &mut Ctx) {
        let (peer_ip, local_pref, ebgp, peer_router_id) = {
            let p = &self.peers[idx];
            let open = p.session.peer_open();
            (
                p.cfg.peer_ip,
                p.cfg.local_pref,
                open.map(|o| o.my_as != self.cfg.asn).unwrap_or(true),
                open.map(|o| o.router_id).unwrap_or(p.cfg.peer_ip),
            )
        };
        let from = PeerInfo {
            peer: peer_ip,
            router_id: peer_router_id,
            ebgp,
            igp_cost: 0,
        };
        ctx.trace_instant(
            "bgp",
            "rib.apply",
            idx as u64,
            updates.len() as u64,
            String::new,
        );
        let mut ops = std::mem::take(&mut self.ops_buf);
        for upd in &updates {
            self.stats.updates_processed += 1;
            ops.clear();
            for prefix in &upd.withdrawn {
                if let Some(change) = self.rib.withdraw(*prefix, peer_ip) {
                    if change.best_changed() {
                        ops.push(match change.new.best {
                            Some(r) => FibOp::Set {
                                prefix: *prefix,
                                next_hop: r.next_hop(),
                            },
                            None => FibOp::Remove { prefix: *prefix },
                        });
                    }
                }
            }
            // Glean only next-hops installed by *announcements* below
            // (withdraw-promoted backups were gleaned when they were
            // first announced) — `announced_from` marks the boundary.
            let announced_from = ops.len();
            if let Some(attrs) = &upd.attrs {
                let local_pref = attrs.local_pref.unwrap_or(local_pref);
                self.rib
                    .apply_update_batch(attrs, &upd.nlri, from, local_pref, |change| {
                        if change.best_changed() {
                            let nh = change.new.best.as_ref().unwrap().next_hop();
                            ops.push(FibOp::Set {
                                prefix: change.prefix,
                                next_hop: nh,
                            });
                        }
                    });
                // Glean: resolve each newly installed (possibly virtual)
                // next-hop proactively, like the paper's router does on
                // route reception.
                for op in &ops[announced_from..] {
                    let FibOp::Set { next_hop: nh, .. } = *op else {
                        continue;
                    };
                    if self.arp.lookup(nh, ctx.now()).is_none() {
                        if let Some(iface_idx) = self.iface_for_nexthop(nh) {
                            if self.arp.prefetch(nh, ctx.now()) {
                                self.send_arp_request(ctx, iface_idx, nh);
                            }
                            self.arm_arp_timer(ctx);
                        }
                    }
                }
            }
            if !ops.is_empty() {
                ctx.trace_instant("program", "fib.burst", 0, ops.len() as u64, String::new);
                ctx.metrics().add("fib.burst_ops", ops.len() as u64);
                self.walker.enqueue_burst(ctx.now(), ops.drain(..), false);
                self.arm_walker(ctx);
            }
        }
        self.ops_buf = ops;
    }

    /// A peer is gone (BFD, hold timer, or notification): purge its
    /// routes and queue the (potentially enormous) FIB walk.
    fn peer_down(&mut self, idx: usize, reason: DownReason, ctx: &mut Ctx) {
        if self.peers[idx].purged {
            return;
        }
        self.peers[idx].purged = true;
        let peer_ip = self.peers[idx].cfg.peer_ip;
        self.events.push((
            ctx.now(),
            RouterEvent::PeerDown {
                peer: peer_ip,
                reason,
            },
        ));
        if self.peers[idx].cfg.controller
            && self.controller_was_up
            && self.degraded_since.is_none()
            && self.controller_sessions_all_down()
        {
            self.degraded_since = Some(ctx.now());
            self.events.push((ctx.now(), RouterEvent::DegradedEnter));
            ctx.metrics().inc("router.degraded_enters");
            ctx.trace_instant("bgp", "degraded.enter", 0, 0, String::new);
            if self.fib_shadow {
                // Degradation formalizes the override: the purge below
                // recomputes every affected prefix, so there is nothing
                // to revert — just retire the shadow bookkeeping.
                self.fib_shadow = false;
                self.shadow_overridden.clear();
                self.events
                    .push((ctx.now(), RouterEvent::FallbackOverrideExit));
            }
        }
        let changes = self.rib.withdraw_peer(peer_ip);
        ctx.trace_instant(
            "detect",
            "session.down",
            idx as u64,
            changes.len() as u64,
            || format!("peer {peer_ip} down; {} prefixes affected", changes.len()),
        );
        // A degraded recompute quarantines BFD-quiet next-hops: a
        // fallback peer that has been silent past half its detection
        // time is very likely dead even though its timer hasn't expired
        // — churning the FIB toward it first would pay a second full
        // churn when the timer fires moments later.
        let quarantine = self.peers[idx].cfg.controller && self.degraded_since.is_some();
        let now = ctx.now();
        let mut ops: Vec<FibOp> = Vec::with_capacity(changes.len());
        for c in changes {
            if !c.best_changed() {
                continue;
            }
            ops.push(match c.new.best {
                Some(ref r) => {
                    let nh = if quarantine && self.peer_bfd_stale(r.from.peer, now) {
                        self.fallback_nh(c.prefix, now)
                            .unwrap_or_else(|| r.next_hop())
                    } else {
                        r.next_hop()
                    };
                    FibOp::Set {
                        prefix: c.prefix,
                        next_hop: nh,
                    }
                }
                None => FibOp::Remove { prefix: c.prefix },
            });
        }
        if !ops.is_empty() {
            ctx.trace_instant("program", "fib.burst", 0, ops.len() as u64, String::new);
            ctx.metrics().add("fib.burst_ops", ops.len() as u64);
            self.walker.enqueue_burst(ctx.now(), ops, true);
            self.arm_walker(ctx);
        }
        if !self.peers[idx].cfg.controller
            && !self.fib_shadow
            && self.degraded_since.is_none()
            && self.controller_was_up
            && self.controller_established()
        {
            // A data peer died while controller routes own the FIB: the
            // flow rules behind their virtual next-hops may now steer
            // into the failed path, and only a live controller can know.
            // Shadow the FIB onto fallback paths at BFD pace; the
            // controller's next sign of life lifts the override.
            self.shadow_enter(ctx);
        }
    }

    // ------------------------------------------------------ data plane

    fn handle_arp(&mut self, ctx: &mut Ctx, port: PortId, payload: &[u8]) {
        let Ok(arp) = ArpRepr::parse(payload) else {
            self.stats.dropped_malformed += 1;
            return;
        };
        let iface_idx = self.interfaces.iter().position(|i| i.port == port);
        let Some(iface_idx) = iface_idx else { return };
        let iface = self.interfaces[iface_idx];
        match arp.op {
            ArpOp::Request => {
                // Learn the sender opportunistically, reply if it asks
                // for one of our addresses.
                let released = self.arp.learn(arp.sender_ip, arp.sender_mac, ctx.now());
                // The L2 mapping (possibly) changed: memoized rewrites
                // through this next-hop are stale.
                self.flow_cache.invalidate_next_hop(arp.sender_ip);
                self.release_frames(ctx, released, arp.sender_ip);
                if arp.target_ip == iface.ip {
                    self.stats.arp_replies_sent += 1;
                    let reply = ArpRepr::reply_to(&arp, iface.mac);
                    let frame = EthernetRepr {
                        dst: arp.sender_mac,
                        src: iface.mac,
                        ethertype: EtherType::Arp,
                    }
                    .to_frame(&reply.to_bytes());
                    ctx.send_frame(iface.port, frame);
                }
            }
            ArpOp::Reply => {
                let released = self.arp.learn(arp.sender_ip, arp.sender_mac, ctx.now());
                self.flow_cache.invalidate_next_hop(arp.sender_ip);
                self.release_frames(ctx, released, arp.sender_ip);
            }
        }
    }

    fn release_frames(&mut self, ctx: &mut Ctx, frames: Vec<Frame>, nh: Ipv4Addr) {
        if frames.is_empty() {
            return;
        }
        let Some(mac) = self.arp.lookup(nh, ctx.now()) else {
            return;
        };
        let Some(iface_idx) = self.iface_for_nexthop(nh) else {
            return;
        };
        let port = self.interfaces[iface_idx].port;
        for mut frame in frames {
            if EthernetRepr::rewrite_dst(frame.make_mut(), mac).is_ok() {
                self.stats.forwarded += 1;
                ctx.send_frame(port, frame);
            }
        }
    }

    /// Forward a non-local IPv4 frame. `ip` is the already-validated
    /// header [`LegacyRouter::on_frame`] parsed (checksum checked once
    /// per packet, not once per lookup).
    fn forward_ipv4(&mut self, ctx: &mut Ctx, mut frame: Frame, ip: Ipv4Repr) {
        if ip.ttl <= 1 {
            self.stats.dropped_ttl += 1;
            return;
        }
        let now = ctx.now();
        let ip_off = sc_net::wire::ethernet::HEADER_LEN;
        // Flow-cache hit: the memoized decision, applying exactly the
        // transform the slow path below would (L2 src rewrite, TTL
        // decrement + checksum fixup, L2 dst rewrite) — only the LPM
        // walk, interface scan and ARP lookup are skipped, so the
        // emitted bytes are identical either way.
        if self.flow_cache_enabled {
            if let Some(e) = self.flow_cache.lookup(ip.dst, now) {
                let iface = self.interfaces[e.iface];
                let buf = frame.make_mut();
                let _ = EthernetRepr::rewrite_src(buf, iface.mac);
                if Ipv4Repr::decrement_ttl(&mut buf[ip_off..]).is_err() {
                    self.stats.dropped_ttl += 1;
                    return;
                }
                let _ = EthernetRepr::rewrite_dst(buf, e.dst_mac);
                self.stats.forwarded += 1;
                ctx.send_frame(iface.port, frame);
                return;
            }
        }
        // LPM in the *installed* FIB — the data plane sees exactly what
        // the walker has applied so far.
        let Some((_, entry)) = self.fib.lookup(ip.dst) else {
            self.stats.dropped_no_route += 1;
            return;
        };
        let nh = if entry.next_hop == Ipv4Addr::UNSPECIFIED {
            ip.dst // connected route: deliver directly
        } else {
            entry.next_hop
        };
        let Some(iface_idx) = self.iface_for_nexthop(nh) else {
            self.stats.dropped_no_iface += 1;
            return;
        };
        let iface = self.interfaces[iface_idx];
        // Rewrite L2 source and decrement TTL in place.
        {
            let buf = frame.make_mut();
            let _ = EthernetRepr::rewrite_src(buf, iface.mac);
            if Ipv4Repr::decrement_ttl(&mut buf[ip_off..]).is_err() {
                self.stats.dropped_ttl += 1;
                return;
            }
        }
        // Fast path: resolved next-hop (static or cached).
        if let Some((mac, expires)) = self.arp.lookup_with_expiry(nh, now) {
            let _ = EthernetRepr::rewrite_dst(frame.make_mut(), mac);
            self.stats.forwarded += 1;
            if self.flow_cache_enabled {
                // Memoize for the flow's next packet; `expires` caps the
                // memo at the backing ARP entry's lifetime.
                self.flow_cache.insert(
                    ip.dst,
                    FlowCacheEntry {
                        next_hop: nh,
                        iface: iface_idx,
                        dst_mac: mac,
                        expires,
                    },
                );
            }
            ctx.send_frame(iface.port, frame);
            return;
        }
        // Slow path: park the frame until ARP resolves.
        match self.arp.resolve(nh, frame, now) {
            Resolution::Ready(_) => unreachable!("lookup above missed"),
            Resolution::QueuedSendRequest(target) => {
                self.send_arp_request(ctx, iface_idx, target);
                self.arm_arp_timer(ctx);
            }
            Resolution::Queued => {
                self.arm_arp_timer(ctx);
            }
            Resolution::Dropped => {}
        }
    }

    fn deliver_local(&mut self, ctx: &mut Ctx, d: &UdpDatagram) {
        self.stats.local_delivered += 1;
        let now = ctx.now();
        // BFD control (RFC 5881 single-hop): demux by source address.
        if d.udp.dst_port == udp_port::BFD_CONTROL {
            if let Some(idx) = self
                .peers
                .iter()
                .position(|p| p.cfg.peer_ip == d.ip.src && p.bfd.is_some())
            {
                if let Ok(pkt) = sc_bfd::BfdPacket::parse(&d.payload) {
                    let events = self.peers[idx].bfd.as_mut().unwrap().on_packet(&pkt, now);
                    for ev in events {
                        self.on_bfd_event(idx, ev, ctx);
                    }
                    self.pump_bfd(idx, ctx);
                }
            }
            return;
        }
        // BGP transport: find the matching channel.
        if let Some(idx) = self.peers.iter().position(|p| p.chan.matches(d)) {
            self.peers[idx].last_heard = now;
            if self.fib_shadow
                && self.peers[idx].cfg.controller
                && self.peers[idx].session.state() == sc_bgp::SessionState::Established
            {
                // Any transport traffic from an Established controller
                // session is proof of life: lift the fallback override.
                self.shadow_exit(ctx);
            }
            let events = self.peers[idx].chan.on_datagram(d, now);
            let mut session_events = Vec::new();
            for ev in events {
                match ev {
                    ChannelEvent::Connected => {
                        self.peers[idx].session.start(now);
                    }
                    ChannelEvent::Delivered(bytes) => match BgpMessage::decode(&bytes) {
                        Ok(msg) => {
                            session_events.extend(self.peers[idx].session.on_message(msg, now));
                        }
                        Err(_) => {
                            self.stats.dropped_malformed += 1;
                        }
                    },
                    ChannelEvent::PeerClosed => {
                        if let Some(ev) = self.peers[idx].session.stop(DownReason::AdminDown) {
                            session_events.push(ev);
                        }
                    }
                }
            }
            self.handle_session_events(idx, session_events, ctx);
            self.pump_peer(idx, ctx);
        }
    }
}

impl Node for LegacyRouter {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        // Install static routes instantly (boot configuration) along
        // with connected subnets.
        for iface in self.interfaces.clone() {
            self.fib.insert(
                iface.subnet,
                crate::fib::FibEntry {
                    next_hop: Ipv4Addr::UNSPECIFIED,
                },
            );
        }
        for r in self.static_routes.clone() {
            self.fib.insert(
                r.prefix,
                crate::fib::FibEntry {
                    next_hop: r.next_hop,
                },
            );
        }
        // Kick off transports (active sides emit their SYN) and BFD.
        for idx in 0..self.peers.len() {
            if self.peers[idx].cfg.transport_active {
                self.peers[idx].chan.flush(ctx);
            }
            if let Some(bfd) = self.peers[idx].bfd.as_mut() {
                bfd.start(ctx.now());
            }
            self.pump_bfd(idx, ctx);
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx, port: PortId, frame: Frame) {
        let Ok((eth, payload)) = EthernetRepr::parse(&frame) else {
            self.stats.dropped_malformed += 1;
            return;
        };
        // NIC filter: our MAC on that interface, or broadcast.
        let our_mac = self
            .interfaces
            .iter()
            .find(|i| i.port == port)
            .map(|i| i.mac);
        let Some(our_mac) = our_mac else { return };
        if eth.dst != our_mac && !eth.dst.is_broadcast() {
            return;
        }
        match eth.ethertype {
            EtherType::Arp => self.handle_arp(ctx, port, payload),
            EtherType::Ipv4 => {
                // Local delivery or forwarding? One parse (with header
                // checksum validation) serves both answers.
                let Ok((ip, _)) = Ipv4Repr::parse(payload) else {
                    self.stats.dropped_malformed += 1;
                    return;
                };
                if self.is_local_ip(ip.dst) {
                    match open_udp_frame(&frame) {
                        Ok(Some(d)) => self.deliver_local(ctx, &d),
                        _ => self.stats.dropped_malformed += 1,
                    }
                } else {
                    self.forward_ipv4(ctx, frame, ip);
                }
            }
            EtherType::Other(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
        match token {
            TIMER_WALKER => {
                self.walker_armed = false;
                let mut applied = std::mem::take(&mut self.walker_batch_buf);
                self.walker
                    .apply_batch(&mut self.fib, ctx.now(), &mut applied);
                let invalidated_before = self.flow_cache.invalidated;
                for op in &applied {
                    // Precise invalidation: only destinations covered by
                    // the changed prefix can have a different best match.
                    self.flow_cache.invalidate_prefix(op.prefix());
                }
                if !applied.is_empty() {
                    ctx.trace_instant("program", "fib.apply", 0, applied.len() as u64, String::new);
                    let dropped = self.flow_cache.invalidated - invalidated_before;
                    if dropped > 0 {
                        ctx.trace_instant(
                            "program",
                            "flowcache.invalidate",
                            0,
                            dropped,
                            String::new,
                        );
                    }
                    ctx.metrics().inc("fib.apply_batches");
                    ctx.metrics().add("fib.ops_applied", applied.len() as u64);
                }
                self.walker_batch_buf = applied;
                self.arm_walker(ctx);
            }
            TIMER_ARP => {
                self.arp_timer_armed = false;
                for target in self.arp.retries_due(ctx.now()) {
                    if let Some(iface_idx) = self.iface_for_nexthop(target) {
                        self.send_arp_request(ctx, iface_idx, target);
                    }
                }
                self.arm_arp_timer(ctx);
            }
            TimerToken(t) if t >= PEER_TIMER_BASE => {
                let idx = ((t - PEER_TIMER_BASE) / PEER_TIMER_STRIDE) as usize;
                if idx >= self.peers.len() {
                    return;
                }
                match (t - PEER_TIMER_BASE) % PEER_TIMER_STRIDE {
                    PEER_TIMER_CHANNEL => {
                        self.peers[idx].chan.on_timer(ctx);
                    }
                    PEER_TIMER_SESSION => {
                        // Clear the armed marker only when this fire IS the
                        // armed wakeup. A receive-driven pump may have re-armed
                        // at a different instant while this (now stale) timer
                        // was still queued; clearing unconditionally would let
                        // the stale fire re-arm a wakeup that is already
                        // pending, breeding duplicate timers that re-seed each
                        // other every cycle.
                        if self.peers[idx].session_wakeup_armed == Some(ctx.now()) {
                            self.peers[idx].session_wakeup_armed = None;
                        }
                        let events = self.peers[idx].session.poll(ctx.now());
                        self.handle_session_events(idx, events, ctx);
                        self.pump_peer(idx, ctx);
                    }
                    PEER_TIMER_BFD => {
                        if self.peers[idx].bfd_wakeup_armed == Some(ctx.now()) {
                            self.peers[idx].bfd_wakeup_armed = None;
                        }
                        self.pump_bfd(idx, ctx);
                    }
                    PEER_TIMER_DEADLINE => {
                        self.check_peer_deadline(idx, ctx);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
