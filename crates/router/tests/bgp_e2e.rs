//! End-to-end legacy-router behavior over the simulated network:
//! session establishment through an L2 switch, full-feed loading,
//! data-plane forwarding, and the paper's stock convergence behavior
//! (BFD detection + linear FIB walk) — everything the non-supercharged
//! half of Fig. 5 relies on.

use sc_bfd::BfdConfig;
use sc_bgp::attrs::{AsPath, RouteAttrs};
use sc_bgp::msg::UpdateMsg;
use sc_net::wire::{open_udp_frame, udp_frame, UdpEndpoints};
use sc_net::{Ipv4Prefix, MacAddr, SimDuration, SimTime};
use sc_openflow::{OfSwitch, SwitchConfig};
use sc_router::{Calibration, Interface, LegacyRouter, PeerConfig, RouterConfig, StaticRoute};
use sc_sim::{Ctx, LinkParams, Node, NodeId, PortId, TimerToken, World};
use std::any::Any;
use std::net::Ipv4Addr;

// ---------------------------------------------------------------- MACs/IPs

const MAC_R1: MacAddr = MacAddr([0x02, 0x10, 0, 0, 0, 1]);
const MAC_R2: MacAddr = MacAddr([0x02, 0x10, 0, 0, 0, 2]);
const MAC_R3: MacAddr = MacAddr([0x02, 0x10, 0, 0, 0, 3]);
const MAC_SRC: MacAddr = MacAddr([0x02, 0x10, 0, 0, 0, 0xa]);
const MAC_SINK: MacAddr = MacAddr([0x02, 0x10, 0, 0, 0, 0xb]);

const IP_R1: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const IP_R2: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const IP_R3: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
const IP_SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);
const IP_SINK2: Ipv4Addr = Ipv4Addr::new(192, 168, 2, 100);
const IP_SINK3: Ipv4Addr = Ipv4Addr::new(192, 168, 3, 100);

fn lan() -> Ipv4Prefix {
    "10.0.0.0/24".parse().unwrap()
}

// ------------------------------------------------------------------- stubs

/// Sends scripted probe frames; records received frames with timestamps.
struct Host {
    name: String,
    script: Vec<(SimTime, Vec<u8>)>,
    port: PortId,
    received: Vec<(SimTime, Vec<u8>)>,
}

impl Host {
    fn new(name: &str) -> Host {
        Host {
            name: name.into(),
            script: Vec::new(),
            port: PortId(0),
            received: Vec::new(),
        }
    }
}

impl Node for Host {
    fn name(&self) -> &str {
        &self.name
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        for (i, (at, _)) in self.script.iter().enumerate() {
            ctx.set_timer_at(*at, TimerToken(i as u64));
        }
    }
    fn on_frame(&mut self, ctx: &mut Ctx, _port: PortId, frame: sc_net::Frame) {
        self.received.push((ctx.now(), frame.to_vec()));
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
        let (_, frame) = self.script[token.0 as usize].clone();
        let port = self.port;
        ctx.send_frame(port, frame);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------- builders

/// `n_prefixes` synthetic /24s starting at 1.0.0.0, packed into UPDATEs.
fn feed(n_prefixes: u32, next_hop: Ipv4Addr, first_as: u16) -> Vec<UpdateMsg> {
    let prefixes: Vec<Ipv4Prefix> = (0..n_prefixes)
        .map(|i| Ipv4Prefix::new(Ipv4Addr::from(0x0100_0000u32 + (i << 8)), 24))
        .collect();
    let attrs = RouteAttrs::ebgp(AsPath::sequence(vec![first_as, 174, 3356]), next_hop).shared();
    prefixes
        .chunks(256)
        .map(|chunk| UpdateMsg::announce(attrs.clone(), chunk.to_vec()))
        .collect()
}

struct Lab {
    world: World,
    r1: NodeId,
    r2: NodeId,
    r3: NodeId,
    sink2: NodeId,
    sink3: NodeId,
    source: NodeId,
    r2_switch_link: sc_sim::LinkId,
}

/// The Fig. 4 topology without the supercharger: R1, R2, R3 on an L2
/// switch; R2/R3 statically default-route to their own sinks; a probe
/// source sits on the LAN.
fn build(n_prefixes: u32, with_bfd: bool, cal: Calibration) -> Lab {
    let mut world = World::new(7);
    let lanp = LinkParams::gigabit(SimDuration::from_micros(10));

    let sw = world.add_node(OfSwitch::new(SwitchConfig::paper_defaults("hp-e3800")));
    let r1 = world.add_node(LegacyRouter::new(RouterConfig {
        name: "r1-nexus7k".into(),
        asn: 65001,
        router_id: Ipv4Addr::new(1, 1, 1, 1),
        cal,
    }));
    let r2 = world.add_node(LegacyRouter::new(RouterConfig {
        name: "r2-provider1".into(),
        asn: 65002,
        router_id: Ipv4Addr::new(2, 2, 2, 2),
        cal: Calibration::instant(), // providers' own FIBs are not under test
    }));
    let r3 = world.add_node(LegacyRouter::new(RouterConfig {
        name: "r3-provider2".into(),
        asn: 65003,
        router_id: Ipv4Addr::new(3, 3, 3, 3),
        cal: Calibration::instant(),
    }));
    let source = world.add_node(Host::new("fpga-source"));
    let sink2 = world.add_node(Host::new("sink-via-r2"));
    let sink3 = world.add_node(Host::new("sink-via-r3"));

    let (_, sw_r1, r1_port) = world.connect(sw, r1, lanp);
    let (r2_link, sw_r2, r2_port) = world.connect(sw, r2, lanp);
    let (_, sw_r3, r3_port) = world.connect(sw, r3, lanp);
    let (_, sw_src, src_port) = world.connect(sw, source, lanp);
    let (_, r2_sink_port, _) = world.connect(r2, sink2, lanp);
    let (_, r3_sink_port, _) = world.connect(r3, sink3, lanp);

    for p in [sw_r1, sw_r2, sw_r3, sw_src] {
        world.node_mut::<OfSwitch>(sw).register_data_port(p);
    }
    world.node_mut::<Host>(source).port = src_port;

    // --- R1: edge router preferring R2 ($) over R3 ($$) ---
    {
        let r1n = world.node_mut::<LegacyRouter>(r1);
        r1n.add_interface(Interface {
            port: r1_port,
            ip: IP_R1,
            mac: MAC_R1,
            subnet: lan(),
        });
        r1n.add_peer(PeerConfig {
            local_pref: 200,
            local_port: 40000,
            remote_port: 179,
            bfd: with_bfd.then(|| BfdConfig::paper_defaults(12)),
            ..PeerConfig::ebgp(IP_R2, MAC_R2, true)
        });
        r1n.add_peer(PeerConfig {
            local_pref: 100,
            local_port: 40001,
            remote_port: 179,
            ..PeerConfig::ebgp(IP_R3, MAC_R3, true)
        });
    }
    // --- R2: provider 1, originates the feed, defaults to its sink ---
    {
        let r2n = world.node_mut::<LegacyRouter>(r2);
        r2n.add_interface(Interface {
            port: r2_port,
            ip: IP_R2,
            mac: MAC_R2,
            subnet: lan(),
        });
        r2n.add_interface(Interface {
            port: r2_sink_port,
            ip: Ipv4Addr::new(192, 168, 2, 1),
            mac: MacAddr([0x02, 0x20, 0, 0, 0, 2]),
            subnet: "192.168.2.0/24".parse().unwrap(),
        });
        r2n.add_static_arp(IP_SINK2, MAC_SINK);
        r2n.add_static_route(StaticRoute {
            prefix: Ipv4Prefix::DEFAULT,
            next_hop: IP_SINK2,
        });
        r2n.add_peer(PeerConfig {
            local_port: 179,
            remote_port: 40000,
            bfd: with_bfd.then(|| BfdConfig::paper_defaults(21)),
            originate: feed(n_prefixes, IP_R2, 65002),
            ..PeerConfig::ebgp(IP_R1, MAC_R1, false)
        });
    }
    // --- R3: provider 2, same feed, defaults to its sink ---
    {
        let r3n = world.node_mut::<LegacyRouter>(r3);
        r3n.add_interface(Interface {
            port: r3_port,
            ip: IP_R3,
            mac: MAC_R3,
            subnet: lan(),
        });
        r3n.add_interface(Interface {
            port: r3_sink_port,
            ip: Ipv4Addr::new(192, 168, 3, 1),
            mac: MacAddr([0x02, 0x20, 0, 0, 0, 3]),
            subnet: "192.168.3.0/24".parse().unwrap(),
        });
        r3n.add_static_arp(IP_SINK3, MAC_SINK);
        r3n.add_static_route(StaticRoute {
            prefix: Ipv4Prefix::DEFAULT,
            next_hop: IP_SINK3,
        });
        r3n.add_peer(PeerConfig {
            local_port: 179,
            remote_port: 40001,
            originate: feed(n_prefixes, IP_R3, 65003),
            ..PeerConfig::ebgp(IP_R1, MAC_R1, false)
        });
    }
    Lab {
        world,
        r1,
        r2,
        r3,
        sink2,
        sink3,
        source,
        r2_switch_link: r2_link,
    }
}

fn probe(dst: Ipv4Addr, marker: u16) -> Vec<u8> {
    // 64-byte-class UDP probe addressed (L2) to R1, like the FPGA source.
    udp_frame(
        UdpEndpoints {
            src_mac: MAC_SRC,
            dst_mac: MAC_R1,
            src_ip: IP_SRC,
            dst_ip: dst,
            src_port: 49152,
            dst_port: marker,
        },
        64,
        &[0xab; 18],
    )
}

// ------------------------------------------------------------------- tests

#[test]
fn sessions_establish_and_feed_converges() {
    let mut lab = build(500, false, Calibration::nexus7k());
    lab.world.run_until(SimTime::from_secs(10));
    let r1 = lab.world.node::<LegacyRouter>(lab.r1);
    assert_eq!(
        r1.peer_session_state(IP_R2),
        Some(sc_bgp::SessionState::Established)
    );
    assert_eq!(
        r1.peer_session_state(IP_R3),
        Some(sc_bgp::SessionState::Established)
    );
    assert!(r1.is_quiescent(), "FIB walker drained");
    // 500 feed prefixes + 1 connected subnet.
    assert_eq!(r1.fib().len(), 501);
    assert_eq!(r1.rib().prefix_count(), 500);
    assert_eq!(r1.rib().route_count(), 1000, "two candidates per prefix");
    // Everything prefers R2 (local-pref 200).
    let first: Ipv4Prefix = "1.0.0.0/24".parse().unwrap();
    assert_eq!(r1.fib().get(first).unwrap().next_hop, IP_R2);
    let best = r1.rib().best(first).unwrap();
    assert_eq!(best.from.peer, IP_R2);
    assert_eq!(r1.rib().candidates(first)[1].from.peer, IP_R3);
}

#[test]
fn data_plane_forwards_through_preferred_provider() {
    let mut lab = build(100, false, Calibration::nexus7k());
    // Probe at t=10s (after convergence) toward a feed prefix.
    lab.world.node_mut::<Host>(lab.source).script = vec![
        (SimTime::from_secs(10), probe(Ipv4Addr::new(1, 0, 5, 1), 1)),
        (
            SimTime::from_secs(10),
            probe(Ipv4Addr::new(99, 99, 99, 99), 2),
        ), // no route
    ];
    lab.world.run_until(SimTime::from_secs(11));
    let sink2 = lab.world.node::<Host>(lab.sink2);
    assert_eq!(sink2.received.len(), 1, "routed probe reached R2's sink");
    let d = open_udp_frame(&sink2.received[0].1).unwrap().unwrap();
    assert_eq!(d.ip.dst, Ipv4Addr::new(1, 0, 5, 1));
    assert_eq!(d.eth.dst, MAC_SINK);
    assert_eq!(d.ip.ttl, 62, "two router hops decrement TTL twice");
    assert!(lab.world.node::<Host>(lab.sink3).received.is_empty());
    let r1 = lab.world.node::<LegacyRouter>(lab.r1);
    assert_eq!(r1.stats.dropped_no_route, 1, "unroutable probe dropped");
}

#[test]
fn bfd_failure_triggers_linear_fib_walk_to_backup() {
    let n: u32 = 1_000;
    let mut lab = build(n, true, Calibration::nexus7k());
    lab.world.run_until(SimTime::from_secs(10));
    assert!(lab.world.node::<LegacyRouter>(lab.r1).is_quiescent());

    // Pull R2's cable at exactly t=10s (the paper disconnects R2 from
    // the switch).
    let link = lab.r2_switch_link;
    lab.world.schedule(SimTime::from_secs(10), move |w| {
        w.set_link_up(link, false);
    });
    lab.world.run_until(SimTime::from_secs(30));

    let r1 = lab.world.node::<LegacyRouter>(lab.r1);
    // BFD detected the failure within its 90ms budget.
    let down_at = r1
        .events
        .iter()
        .find_map(|(t, e)| match e {
            sc_router::node::RouterEvent::PeerDown { peer, reason } if *peer == IP_R2 => {
                assert_eq!(
                    *reason,
                    sc_bgp::session::DownReason::BfdDown,
                    "BFD teardown must be logged as BfdDown, not AdminDown"
                );
                Some(*t)
            }
            _ => None,
        })
        .expect("peer down observed");
    let detection = down_at - SimTime::from_secs(10);
    assert!(
        detection <= SimDuration::from_millis(91),
        "BFD detection took {detection}"
    );
    // All prefixes now point at R3.
    assert!(r1.is_quiescent());
    let first: Ipv4Prefix = "1.0.0.0/24".parse().unwrap();
    assert_eq!(r1.fib().get(first).unwrap().next_hop, IP_R3);
    let mut checked = 0;
    for (_, entry) in r1.fib().iter() {
        if entry.next_hop == IP_R3 {
            checked += 1;
        }
    }
    assert_eq!(checked, n as usize);
    // The walk took ≈ detection + 285ms + n × 281µs (±jitter): the
    // calibrated linear model of Fig. 5.
    let walk_done = r1.walker().last_apply_at.expect("walker ran");
    let total = walk_done - SimTime::from_secs(10);
    let expected = Calibration::nexus7k().expected_full_walk(n as u64);
    let lo = expected.as_nanos() as f64 * 0.85;
    let hi = expected.as_nanos() as f64 * 1.25;
    let got = total.as_nanos() as f64;
    assert!(
        got >= lo && got <= hi,
        "stock convergence {total} vs model {expected}"
    );
}

#[test]
fn without_bfd_detection_waits_for_hold_timer() {
    let mut lab = build(50, false, Calibration::nexus7k());
    lab.world.run_until(SimTime::from_secs(10));
    let link = lab.r2_switch_link;
    lab.world.schedule(SimTime::from_secs(10), move |w| {
        w.set_link_up(link, false);
    });
    // The hold timer runs from the last received BGP message. The feed
    // completes within the first second and the cut at t=10s swallows
    // all later keepalives, so expiry lands shortly after t≈90.6s.
    // Before that, nothing may be detected.
    lab.world.run_until(SimTime::from_secs(85));
    {
        let r1 = lab.world.node::<LegacyRouter>(lab.r1);
        assert!(
            r1.events.iter().all(
                |(_, e)| !matches!(e, sc_router::node::RouterEvent::PeerDown { peer, .. } if *peer == IP_R2)
            ),
            "no BFD: peer still considered up before hold expiry"
        );
        let first: Ipv4Prefix = "1.0.0.0/24".parse().unwrap();
        assert_eq!(
            r1.fib().get(first).unwrap().next_hop,
            IP_R2,
            "traffic still blackholed"
        );
    }
    lab.world.run_until(SimTime::from_secs(140));
    let r1 = lab.world.node::<LegacyRouter>(lab.r1);
    let down_at = r1
        .events
        .iter()
        .find_map(|(t, e)| match e {
            sc_router::node::RouterEvent::PeerDown { peer, reason } if *peer == IP_R2 => {
                assert_eq!(*reason, sc_bgp::session::DownReason::HoldTimerExpired);
                Some(*t)
            }
            _ => None,
        })
        .expect("hold timer eventually fired");
    assert!(
        down_at >= SimTime::from_secs(90) && down_at <= SimTime::from_secs(95),
        "hold expiry expected shortly after t=90s, got {down_at}"
    );
    let first: Ipv4Prefix = "1.0.0.0/24".parse().unwrap();
    assert_eq!(r1.fib().get(first).unwrap().next_hop, IP_R3);
}

#[test]
fn injections_while_session_down_still_update_adj_rib_out() {
    // The Adj-RIB-Out is advertised *intent*: a withdraw injected while
    // the session is down must not be forgotten — the restart replay
    // carries the post-withdraw state, not the boot-time feed.
    let mut r = LegacyRouter::new(RouterConfig {
        name: "r2".into(),
        asn: 65002,
        router_id: Ipv4Addr::new(2, 2, 2, 2),
        cal: Calibration::instant(),
    });
    r.add_interface(Interface {
        port: PortId(0),
        ip: IP_R2,
        mac: MAC_R2,
        subnet: lan(),
    });
    r.add_peer(PeerConfig {
        local_port: 179,
        remote_port: 40000,
        originate: feed(10, IP_R2, 65002),
        ..PeerConfig::ebgp(IP_R1, MAC_R1, false)
    });
    assert_eq!(r.adj_rib_out_len(IP_R1), Some(10));
    let withdraw = UpdateMsg::withdraw(vec!["1.0.0.0/24".parse().unwrap()]);
    let tokens = r.inject_updates(&[withdraw]);
    assert!(
        tokens.is_empty(),
        "session down: nothing queued on the wire"
    );
    assert_eq!(
        r.adj_rib_out_len(IP_R1),
        Some(9),
        "withdraw recorded for the next replay"
    );
}

#[test]
fn flap_reestablishes_and_reannounces_feed_once_per_establishment() {
    // The RFC 4271 restart cycle end-to-end: cut R2's cable, let BFD
    // tear the session down, restore the cable, and require (a) the
    // session re-establishes over a fresh transport, (b) R2 replays its
    // Adj-RIB-Out exactly once per establishment, and (c) R1's FIB
    // converges back to R2 — the behavior the old one-shot `feed_sent`
    // latch made impossible.
    let n: u32 = 300;
    let mut lab = build(n, true, Calibration::nexus7k());
    lab.world.run_until(SimTime::from_secs(10));
    let link = lab.r2_switch_link;
    lab.world
        .schedule(SimTime::from_secs(10), move |w| w.set_link_up(link, false));
    lab.world
        .schedule(SimTime::from_secs(11), move |w| w.set_link_up(link, true));
    lab.world.run_until(SimTime::from_secs(25));

    let r2 = lab.world.node::<LegacyRouter>(lab.r2);
    assert_eq!(
        r2.peer_establishments(IP_R1),
        Some(2),
        "one establishment per restart cycle"
    );
    let feeds_sent = r2
        .events
        .iter()
        .filter(|(_, e)| {
            matches!(e, sc_router::node::RouterEvent::FeedAnnounced { peer, .. } if *peer == IP_R1)
        })
        .count();
    assert_eq!(
        feeds_sent, 2,
        "feed replayed exactly once per establishment"
    );
    assert_eq!(r2.adj_rib_out_len(IP_R1), Some(n as usize));

    // The bystander session was untouched by R2's flap.
    let r3 = lab.world.node::<LegacyRouter>(lab.r3);
    assert_eq!(r3.peer_establishments(IP_R1), Some(1));

    let r1 = lab.world.node::<LegacyRouter>(lab.r1);
    assert_eq!(
        r1.peer_session_state(IP_R2),
        Some(sc_bgp::SessionState::Established),
        "session back up after the flap"
    );
    assert_eq!(r1.peer_establishments(IP_R2), Some(2));
    // Down (BFD) then up again, visible in the event log.
    let downs = r1
        .events
        .iter()
        .filter(|(_, e)| {
            matches!(
                e,
                sc_router::node::RouterEvent::PeerDown {
                    peer,
                    reason: sc_bgp::session::DownReason::BfdDown,
                } if *peer == IP_R2
            )
        })
        .count();
    assert_eq!(downs, 1, "exactly one BFD teardown");
    // The RIB re-learned R2's routes and the FIB walked back to it.
    assert!(r1.is_quiescent());
    let first: Ipv4Prefix = "1.0.0.0/24".parse().unwrap();
    assert_eq!(
        r1.fib().get(first).unwrap().next_hop,
        IP_R2,
        "converged back to the preferred provider"
    );
    assert_eq!(r1.rib().route_count(), 2 * n as usize, "both feeds present");
}

#[test]
fn provider_failure_data_plane_blackhole_then_recovery() {
    // The full stock story, measured at the data plane: probes flow via
    // R2's sink, stall during the walk, then arrive at R3's sink.
    let mut lab = build(200, true, Calibration::nexus7k());
    let dst = Ipv4Addr::new(1, 0, 10, 1); // prefix #10 of the feed
    let script: Vec<(SimTime, Vec<u8>)> = (0..200u64)
        .map(|i| {
            (
                SimTime::from_secs(9) + SimDuration::from_millis(i * 10),
                probe(dst, 7),
            )
        })
        .collect();
    lab.world.node_mut::<Host>(lab.source).script = script;
    let link = lab.r2_switch_link;
    lab.world.schedule(SimTime::from_secs(10), move |w| {
        w.set_link_up(link, false);
    });
    lab.world.run_until(SimTime::from_secs(12));
    let sink2 = lab.world.node::<Host>(lab.sink2);
    let sink3 = lab.world.node::<Host>(lab.sink3);
    assert!(!sink2.received.is_empty(), "pre-failure probes via R2");
    assert!(
        sink2
            .received
            .iter()
            .all(|(t, _)| *t <= SimTime::from_secs(10)),
        "nothing reaches R2's sink after the cut"
    );
    assert!(!sink3.received.is_empty(), "post-recovery probes via R3");
    let first_via_r3 = sink3.received.first().unwrap().0;
    let gap = first_via_r3 - SimTime::from_secs(10);
    // Recovery for one of 200 prefixes: detection + processing + walk
    // position; must be between 300ms and ~500ms.
    assert!(
        gap >= SimDuration::from_millis(300) && gap <= SimDuration::from_millis(500),
        "stock recovery took {gap}"
    );
}
