//! Wire a [`Blueprint`] into a runnable [`sc_sim::World`].
//!
//! The generic build generalizes `sc_lab::topology::ConvergenceLab`
//! from (R1 + two providers) to (R1 + M ranked providers + a shared
//! forwarder fabric). The Fig. 4 topology itself keeps delegating to
//! `ConvergenceLab`, so the paper reproduction is bit-for-bit
//! unchanged; everything else is wired here.
//!
//! Addressing plan (extends the lab's):
//!
//! | node            | IP                | MAC               |
//! |-----------------|-------------------|-------------------|
//! | R1              | 10.0.0.1          | 02:10:…:01        |
//! | provider i      | 10.0.0.(30+i)     | 02:40:…:(i+1)     |
//! | controller c    | 10.0.0.(10+c)     | 02:cc:…:(c+1)     |
//! | switch (mgmt)   | 10.0.0.20         | 02:ee:…:01        |
//! | source          | 10.0.0.100        | 02:aa:…:01        |
//! | path edge k     | 10.(40+k).0.0/24  | 02:60:00:00:k:side|
//! | ring closer     | 10.39.0.0/24      | 02:60:00:00:ff:side|
//! | sink (any edge) | x.x.x.100         | 02:bb:…:01        |

use crate::topo::{Blueprint, TopologySpec};
use sc_bfd::BfdConfig;
use sc_bgp::msg::UpdateMsg;
use sc_lab::topology::{
    controller_ip, controller_mac, ConvergenceLab, LabConfig, IP_R2, IP_R3, IP_SOURCE, IP_SWITCH,
    MAC_R1, MAC_SINK, MAC_SOURCE, MAC_SWITCH,
};
use sc_lab::Mode;
use sc_net::{Ipv4Addr, Ipv4Prefix, MacAddr, SimDuration, SimTime};
use sc_openflow::{OfSwitch, SwitchConfig, TableMiss};
use sc_routegen::{generate_feed_for, prefix_universe, sample_flow_ips, FeedConfig};
use sc_router::{Calibration, Interface, LegacyRouter, PeerConfig, RouterConfig, StaticRoute};
use sc_sim::{LinkId, LinkParams, NodeId, PortId, TimerToken, World};
use sc_traffic::{SinkConfig, SourceConfig, TrafficSink, TrafficSource};
use supercharger::engine::PeerSpec;
use supercharger::{Controller, ControllerConfig, PeerLink, RouterLink, SwitchLink};

pub const IP_R1: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

/// LOCAL_PREF R1 assigns to controller-learned routes when
/// [`ScenarioConfig::fallback_sessions`] is on: strictly above every
/// blueprint provider preference, so supercharged paths win while any
/// controller session lives and the direct eBGP fallback takes over the
/// instant the last one dies.
pub const CONTROLLER_PREF: u32 = 1_000;

/// Where the providers' route feeds come from.
#[derive(Clone, Debug, Default)]
pub enum FeedSource {
    /// Deterministic synthetic tables from `sc_routegen` (the default;
    /// every provider announces `prefixes` prefixes).
    #[default]
    Synthetic,
    /// Feeds seeded from a recorded MRT RIB snapshot, plus an optional
    /// timed `BGP4MP` update trace replayed on top of the converged
    /// world with recorded inter-arrival timing. Overrides `prefixes`
    /// with the snapshot's table size.
    MrtReplay(MrtReplayFeed),
}

/// An MRT-backed feed: the `TABLE_DUMP_V2` snapshot that seeds the
/// provider tables and the `BGP4MP(_ET)` trace replayed after
/// convergence. Recorded peer `k` maps onto provider `k % providers`
/// (so the trace's churning peer lands on the primary in every built-in
/// blueprint), and recorded next-hops are rewritten to the owning
/// provider's address — the replay analogue of loading RIS routes onto
/// R2/R3 in the paper's lab.
#[derive(Clone, Debug)]
pub struct MrtReplayFeed {
    /// `TABLE_DUMP_V2` snapshot bytes (e.g. a committed fixture or a
    /// real `bview` file).
    pub rib: std::sync::Arc<Vec<u8>>,
    /// `BGP4MP(_ET)` update-trace bytes; empty = table-only (no timed
    /// replay).
    pub updates: std::sync::Arc<Vec<u8>>,
    /// Warp factor on recorded inter-arrival gaps (`"1"` = recorded
    /// timing, `"0.25"` = 4× faster).
    pub time_scale: sc_mrt::TimeScale,
    /// A silence longer than this (post-warp) splits the trace into
    /// separate convergence epochs, each measured in its own window.
    pub epoch_quiet: SimDuration,
}

impl MrtReplayFeed {
    pub fn new(rib: Vec<u8>, updates: Vec<u8>) -> MrtReplayFeed {
        MrtReplayFeed {
            rib: std::sync::Arc::new(rib),
            updates: std::sync::Arc::new(updates),
            time_scale: sc_mrt::TimeScale::REAL,
            epoch_quiet: SimDuration::from_millis(100),
        }
    }
}

/// Scenario-wide knobs shared by every topology (the generalization of
/// `LabConfig` minus the Fig. 4 specifics).
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Number of prefixes every provider advertises.
    pub prefixes: u32,
    /// Number of monitored flows.
    pub flows: usize,
    /// Seed for feeds, flow sampling, and all simulation randomness.
    pub seed: u64,
    /// Probe rate per flow; `None` auto-scales (see
    /// [`crate::runner::suggested_rate`]).
    pub rate_pps: Option<u64>,
    /// R1's hardware model.
    pub cal: Calibration,
    /// Run BFD on the primary provider's sessions.
    pub bfd: bool,
    pub bfd_interval: SimDuration,
    /// Controller replicas (supercharged mode).
    pub controllers: usize,
    /// Controller compute/REST latency before FLOW_MODs leave.
    pub reaction_delay: SimDuration,
    /// Frame-loss probability on controller↔switch links.
    ///
    /// Deprecated alias: prefer [`ScenarioConfig::link_params`] with
    /// [`crate::events::LinkRef::ControllerSwitch`], which can set
    /// loss, corruption, and latency on *any* resolvable link. This
    /// scalar is kept for existing cells and composes with
    /// `link_params` (params win where both name the same link).
    pub control_loss: f64,
    /// Per-link parameter overrides applied after the world is wired:
    /// each [`crate::events::LinkRef`] resolves against the built
    /// topology and replaces that link's [`LinkParams`] wholesale
    /// (loss, corruption, latency, bandwidth).
    pub link_params: Vec<(crate::events::LinkRef, LinkParams)>,
    /// Keepalive/echo beacon interval of each controller replica (to
    /// both the switch agent and R1). `None` (the default) sends no
    /// beacons, leaving liveness to BGP hold timers — the pre-fail-safe
    /// behavior.
    pub echo_interval: Option<SimDuration>,
    /// Liveness deadline armed against the beacons on the switch agent
    /// and on R1's controller sessions: silence for this long flips the
    /// node out of supercharging (the router enters **Degraded**).
    /// `None` disables the watchdogs.
    pub controller_deadline: Option<SimDuration>,
    /// BGP hold time R1 proposes on its controller sessions (the
    /// fallback detection path when no `controller_deadline` watchdog
    /// is armed; RFC 4271 floors negotiated holds at 3 s).
    pub controller_hold: SimDuration,
    /// Graceful degradation (supercharged mode only): R1 keeps direct
    /// eBGP fallback sessions to every provider at the blueprint's
    /// local-prefs while controller sessions import at
    /// [`CONTROLLER_PREF`]. The supercharged paths shadow the fallback
    /// routes until every controller session is gone, at which point
    /// the purge promotes the fallback routes and legacy BGP drives the
    /// FIB directly.
    pub fallback_sessions: bool,
    /// Keep a bounded event trace.
    pub trace: bool,
    /// Router forwarding flow cache (diagnostics knob: `false` forces
    /// every packet down the LPM slow path; results must be identical —
    /// the determinism regression tests prove it).
    pub flow_cache: bool,
    /// Event scheduler the trial worlds run on. The timer wheel is the
    /// default; the reference heap produces byte-identical stable
    /// reports (the determinism regression tests prove it).
    pub scheduler: sc_sim::SchedulerKind,
    /// Where provider feeds come from (synthetic tables or an MRT
    /// snapshot + timed replay).
    pub feed: FeedSource,
    /// Run the convergence-invariant engine (`sc-invariant`): walk the
    /// installed FIBs every `invariant_cadence` inside each measurement
    /// window and report per-class violation durations. Off by default
    /// — the samples are deterministic but not free, and the perf-gated
    /// benches compare against uninstrumented baselines.
    pub invariants: bool,
    /// Sampling cadence of the invariant engine; also the resolution of
    /// every violation-duration figure it reports.
    pub invariant_cadence: SimDuration,
    /// Monotonic clock injected into trial worlds so the wall-clock
    /// `events_per_sec` perf column gets recorded. `None` (the default)
    /// leaves worlds clock-free — the kernel itself never reads real
    /// time (sc-check `no-wall-clock`), so perf reporting is strictly
    /// opt-in by the outermost shell (`sc_bench::timing::wall_clock`).
    pub wall_clock: Option<sc_sim::WallClock>,
}

impl Default for ScenarioConfig {
    fn default() -> ScenarioConfig {
        ScenarioConfig {
            prefixes: 1_000,
            flows: 50,
            seed: 42,
            rate_pps: None,
            cal: Calibration::nexus7k(),
            bfd: true,
            bfd_interval: SimDuration::from_millis(30),
            controllers: 1,
            reaction_delay: SimDuration::from_millis(3),
            control_loss: 0.0,
            link_params: Vec::new(),
            echo_interval: None,
            controller_deadline: None,
            controller_hold: SimDuration::from_secs(90),
            fallback_sessions: false,
            trace: false,
            flow_cache: true,
            scheduler: sc_sim::SchedulerKind::default(),
            feed: FeedSource::Synthetic,
            invariants: false,
            invariant_cadence: SimDuration::from_millis(5),
            wall_clock: None,
        }
    }
}

/// A wired, ready-to-run scenario world with every name an event
/// script can target resolved to concrete simulator ids.
pub struct BuiltScenario {
    pub world: World,
    pub cfg: ScenarioConfig,
    pub mode: Mode,
    pub blueprint: Blueprint,
    pub switch: NodeId,
    pub r1: NodeId,
    pub providers: Vec<NodeId>,
    pub provider_ips: Vec<Ipv4Addr>,
    pub forwarders: Vec<NodeId>,
    pub controllers: Vec<NodeId>,
    /// Switch ↔ controller links, one per replica (replica-divergence
    /// scripts cut or delay these).
    pub controller_links: Vec<LinkId>,
    pub source: NodeId,
    pub sink: NodeId,
    /// Provider i ↔ switch (the "pull the cable" target).
    pub provider_switch_links: Vec<LinkId>,
    /// Provider i's first delivery edge (toward its entry forwarder or
    /// the sink).
    pub provider_path_links: Vec<LinkId>,
    /// Forwarder j's uplink toward the sink (empty for Fig. 4).
    pub forwarder_up_links: Vec<LinkId>,
    /// The routeless arc closing a ring, if the topology has one.
    pub ring_closer_link: Option<LinkId>,
    pub flow_ips: Vec<Ipv4Addr>,
    pub universe: Vec<Ipv4Prefix>,
    /// Each provider's originated feed (event scripts re-announce from
    /// it during churn bursts).
    pub feeds: Vec<Vec<UpdateMsg>>,
    /// Index of the primary (highest-preference) provider.
    pub primary: usize,
    /// Recorded peer addresses of the MRT snapshot (peer-table order;
    /// empty for synthetic feeds). Replay maps recorded peer `k` onto
    /// provider `k % providers`.
    pub replay_peers: Vec<Ipv4Addr>,
    /// Restart factories: the exact config each controller replica was
    /// built from, so a `restart_controller` chaos event can boot a
    /// fresh process into the crashed slot. Empty for legacy builds and
    /// the bit-exact Fig. 4 delegation (no restart support there).
    pub controller_cfgs: Vec<ControllerConfig>,
}

/// Build the world for one (topology, mode) pair.
pub fn build_scenario(topo: &TopologySpec, mode: Mode, cfg: &ScenarioConfig) -> BuiltScenario {
    let mut scn = match topo {
        // Fig. 4 with synthetic feeds keeps its bit-exact delegation to
        // `ConvergenceLab`; an MRT-fed Fig. 4 goes through the generic
        // builder (same blueprint, snapshot-derived tables).
        TopologySpec::Fig4Lab if matches!(cfg.feed, FeedSource::Synthetic) => build_fig4(mode, cfg),
        other => build_generic(other.blueprint(), mode, cfg),
    };
    if !cfg.flow_cache {
        let routers: Vec<NodeId> = std::iter::once(scn.r1)
            .chain(scn.providers.iter().copied())
            .chain(scn.forwarders.iter().copied())
            .collect();
        for id in routers {
            scn.world
                .node_mut::<LegacyRouter>(id)
                .set_flow_cache_enabled(false);
        }
    }
    for (link, params) in &cfg.link_params {
        let l =
            crate::events::resolve_link(&scn, *link).unwrap_or_else(|e| panic!("link_params: {e}"));
        scn.world.set_link_params(l, *params);
    }
    scn
}

/// The Fig. 4 lab, by delegation to [`ConvergenceLab`] (backward
/// compatibility: the paper reproduction keeps its exact wiring).
fn build_fig4(mode: Mode, cfg: &ScenarioConfig) -> BuiltScenario {
    assert!(
        mode != Mode::Supercharged || cfg.controllers >= 1,
        "supercharged mode needs at least one controller"
    );
    let mut lab = ConvergenceLab::build(LabConfig {
        mode,
        prefixes: cfg.prefixes,
        flows: cfg.flows,
        seed: cfg.seed,
        rate_pps: cfg.rate_pps,
        cal: cfg.cal,
        bfd: cfg.bfd,
        bfd_interval: cfg.bfd_interval,
        controllers: if mode == Mode::Supercharged {
            cfg.controllers
        } else {
            1
        },
        reaction_delay: cfg.reaction_delay,
        portstatus_failover: false,
        control_loss: cfg.control_loss,
        trace: cfg.trace,
        scheduler: cfg.scheduler,
    });
    // Parallel-kernel partition (same policy as the generic builder):
    // providers round-robin, everything else on shard 0. Entries the
    // map does not cover default to shard 0 in the world.
    if let sc_sim::SchedulerKind::Sharded { shards } = cfg.scheduler {
        let shards = shards.max(1);
        let mut map = vec![0u32; lab.r2.0.max(lab.r3.0) + 1];
        map[lab.r3.0] = (1 % shards) as u32;
        lab.world.set_shard_map(map);
    }
    BuiltScenario {
        cfg: cfg.clone(),
        mode,
        blueprint: TopologySpec::Fig4Lab.blueprint(),
        switch: lab.switch,
        r1: lab.r1,
        providers: vec![lab.r2, lab.r3],
        provider_ips: vec![IP_R2, IP_R3],
        forwarders: Vec::new(),
        controllers: lab.controllers,
        controller_links: lab.controller_links,
        source: lab.source,
        sink: lab.sink,
        provider_switch_links: vec![lab.r2_link, lab.r3_link],
        provider_path_links: lab.sink_links.to_vec(),
        forwarder_up_links: Vec::new(),
        ring_closer_link: None,
        flow_ips: lab.flow_ips,
        universe: lab.universe,
        feeds: lab.feeds.to_vec(),
        primary: 0,
        replay_peers: Vec::new(),
        controller_cfgs: Vec::new(),
        world: lab.world,
    }
}

/// The universe and per-provider feeds for a scenario, from whichever
/// source the config names. For MRT feeds, recorded peer `i % peers`
/// seeds provider `i`, with next-hops rewritten to the provider's LAN
/// address (attribute-run sharing preserved, so NLRI packing matches a
/// real speaker's). Returns the snapshot's peer addresses for replay
/// mapping (empty when synthetic).
#[allow(clippy::type_complexity)]
fn derive_feeds(
    cfg: &ScenarioConfig,
    m: usize,
) -> (Vec<Ipv4Prefix>, Vec<Vec<UpdateMsg>>, Vec<Ipv4Addr>) {
    match &cfg.feed {
        FeedSource::Synthetic => {
            let universe = prefix_universe(cfg.prefixes, cfg.seed);
            let feeds = (0..m)
                .map(|i| {
                    generate_feed_for(
                        &FeedConfig::new(cfg.prefixes, cfg.seed, provider_ip(i), provider_asn(i)),
                        &universe,
                    )
                })
                .collect();
            (universe, feeds, Vec::new())
        }
        FeedSource::MrtReplay(replay) => {
            let snap = sc_mrt::RibSnapshot::load(&replay.rib)
                .unwrap_or_else(|e| panic!("MRT RIB snapshot: {e}"));
            let universe = snap.prefixes();
            assert!(!universe.is_empty(), "MRT snapshot carries no routes");
            let peer_n = snap.peers.len().max(1);
            let feeds = (0..m)
                .map(|i| {
                    let routes = snap.routes_for_peer((i % peer_n) as u16);
                    let rewritten =
                        sc_mrt::NextHopRewriter::new(provider_ip(i)).rewrite_routes(&routes);
                    sc_mrt::pack_feed(&rewritten, 300)
                })
                .collect();
            let peers = snap.peers.iter().map(|p| p.addr).collect();
            (universe, feeds, peers)
        }
    }
}

pub fn provider_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 30 + i as u8)
}

pub fn provider_mac(i: usize) -> MacAddr {
    MacAddr([0x02, 0x40, 0, 0, 0, i as u8 + 1])
}

fn provider_asn(i: usize) -> u16 {
    65100 + i as u16
}

fn edge_mac(k: usize, side: u8) -> MacAddr {
    MacAddr([0x02, 0x60, 0, 0, k as u8, side])
}

fn lan() -> Ipv4Prefix {
    "10.0.0.0/16".parse().unwrap()
}

fn vnh_pool() -> Ipv4Prefix {
    "10.0.200.0/24".parse().unwrap()
}

/// One allocated delivery edge: `a`'s uplink interface plus the next
/// hop it routes toward.
struct EdgePlan {
    subnet: Ipv4Prefix,
    a_ip: Ipv4Addr,
    b_ip: Ipv4Addr,
}

fn edge_plan(k: usize) -> EdgePlan {
    assert!(k < 200, "delivery fabric exceeds the addressing plan");
    let base = Ipv4Addr::new(10, 40 + k as u8, 0, 0);
    EdgePlan {
        subnet: Ipv4Prefix::new(base, 24),
        a_ip: Ipv4Addr::new(10, 40 + k as u8, 0, 1),
        b_ip: Ipv4Addr::new(10, 40 + k as u8, 0, 2),
    }
}

fn build_generic(bp: Blueprint, mode: Mode, cfg: &ScenarioConfig) -> BuiltScenario {
    let m = bp.providers.len();
    assert!((2..=16).contains(&m), "2..=16 providers supported, got {m}");
    assert!(
        mode != Mode::Supercharged || cfg.controllers >= 1,
        "supercharged mode needs at least one controller"
    );
    assert!(cfg.flows >= 1 && cfg.prefixes >= 1);
    let (universe, feeds, replay_peers) = derive_feeds(cfg, m);
    let flow_ips = sample_flow_ips(&universe, cfg.flows, cfg.seed);
    let primary = bp.primary();
    // An MRT snapshot overrides the configured table size; keep the
    // stored config consistent with what the providers actually
    // announce (convergence checks and reports read it from there).
    let cfg = &ScenarioConfig {
        prefixes: universe.len() as u32,
        ..cfg.clone()
    };

    let mut world = World::with_scheduler(cfg.seed, cfg.scheduler);
    if let Some(clock) = cfg.wall_clock {
        world.set_wall_clock(clock);
    }
    if cfg.trace {
        world.enable_trace(1_000_000);
        world.enable_metrics();
    }
    let lanp = LinkParams::gigabit(SimDuration::from_micros(10));

    // --- nodes ---
    let switch = world.add_node(OfSwitch::new(SwitchConfig {
        table_miss: TableMiss::L2Learn,
        controller_deadline: cfg.controller_deadline,
        ..SwitchConfig::paper_defaults("scenario-switch")
    }));
    let r1 = world.add_node(LegacyRouter::new(RouterConfig {
        name: "r1".into(),
        asn: 65001,
        router_id: Ipv4Addr::new(1, 1, 1, 1),
        cal: cfg.cal,
    }));
    let providers: Vec<NodeId> = (0..m)
        .map(|i| {
            world.add_node(LegacyRouter::new(RouterConfig {
                name: format!("provider-{i}"),
                asn: provider_asn(i),
                router_id: provider_ip(i),
                cal: Calibration::instant(),
            }))
        })
        .collect();
    let forwarders: Vec<NodeId> = (0..bp.forwarders.len())
        .map(|j| {
            world.add_node(LegacyRouter::new(RouterConfig {
                name: format!("forwarder-{j}"),
                asn: 64512,
                router_id: Ipv4Addr::new(9, 9, 9, j as u8 + 1),
                cal: Calibration::instant(),
            }))
        })
        .collect();
    let source = world.add_node(TrafficSource::new(
        SourceConfig::paper(
            "fpga-source",
            MAC_SOURCE,
            IP_SOURCE,
            MAC_R1,
            flow_ips.clone(),
            SimTime::MAX - SimDuration::from_secs(1), // re-windowed later
            SimTime::MAX,
        ),
        PortId(0),
    ));
    let sink = world.add_node(TrafficSink::new(SinkConfig::paper(
        "fpga-sink",
        flow_ips.clone(),
    )));

    // --- LAN wiring (order fixes each node's PortId(0)) ---
    let (_, sw_port_r1, _) = world.connect(switch, r1, lanp);
    let mut provider_switch_links = Vec::new();
    let mut sw_port_p = Vec::new();
    for (i, spec) in bp.providers.iter().enumerate() {
        let (l, swp, _) =
            world.connect(switch, providers[i], LinkParams::gigabit(spec.lan_latency));
        provider_switch_links.push(l);
        sw_port_p.push(swp);
    }
    let (_, sw_port_src, _) = world.connect(switch, source, lanp);

    // --- delivery fabric ---
    // Interface/route configuration is collected first and applied after
    // all links exist (connect() hands out the port ids).
    struct RouterSetup {
        node: NodeId,
        iface: Interface,
        arp: (Ipv4Addr, MacAddr),
        default_route: Option<Ipv4Addr>,
    }
    let mut setups: Vec<RouterSetup> = Vec::new();
    let mut edge_count = 0usize;

    // Wire `a`'s uplink to `b` (a forwarder or the sink); returns the
    // link so scripts can target it.
    let wire_edge = |world: &mut World,
                     setups: &mut Vec<RouterSetup>,
                     edge_count: &mut usize,
                     a: NodeId,
                     b: Option<NodeId>, // None = sink
                     latency: SimDuration|
     -> LinkId {
        let k = *edge_count;
        *edge_count += 1;
        let plan = edge_plan(k);
        let peer = b.unwrap_or(sink);
        let (link, pa, pb) = world.connect(a, peer, LinkParams::gigabit(latency));
        match b {
            Some(fwd) => {
                setups.push(RouterSetup {
                    node: a,
                    iface: Interface {
                        port: pa,
                        ip: plan.a_ip,
                        mac: edge_mac(k, 1),
                        subnet: plan.subnet,
                    },
                    arp: (plan.b_ip, edge_mac(k, 2)),
                    default_route: Some(plan.b_ip),
                });
                setups.push(RouterSetup {
                    node: fwd,
                    iface: Interface {
                        port: pb,
                        ip: plan.b_ip,
                        mac: edge_mac(k, 2),
                        subnet: plan.subnet,
                    },
                    arp: (plan.a_ip, edge_mac(k, 1)),
                    default_route: None,
                });
            }
            None => {
                let sink_ip = Ipv4Addr::new(10, 40 + k as u8, 0, 100);
                setups.push(RouterSetup {
                    node: a,
                    iface: Interface {
                        port: pa,
                        ip: plan.a_ip,
                        mac: edge_mac(k, 1),
                        subnet: plan.subnet,
                    },
                    arp: (sink_ip, MAC_SINK),
                    default_route: Some(sink_ip),
                });
            }
        }
        link
    };

    // Forwarder uplinks first (a forwarder's uplink is its PortId(0)).
    let mut forwarder_up_links = Vec::new();
    for (j, f) in bp.forwarders.iter().enumerate() {
        let next = f.next.map(|n| forwarders[n]);
        forwarder_up_links.push(wire_edge(
            &mut world,
            &mut setups,
            &mut edge_count,
            forwarders[j],
            next,
            f.latency,
        ));
    }
    // Provider delivery edges.
    let mut provider_path_links = Vec::new();
    for (i, spec) in bp.providers.iter().enumerate() {
        let entry = spec.entry.map(|e| forwarders[e]);
        provider_path_links.push(wire_edge(
            &mut world,
            &mut setups,
            &mut edge_count,
            providers[i],
            entry,
            SimDuration::from_micros(50),
        ));
    }
    // The routeless ring-closing arc.
    let ring_closer_link = bp.ring_closer.map(|(a, b)| {
        let subnet: Ipv4Prefix = "10.39.0.0/24".parse().unwrap();
        let (link, pa, pb) = world.connect(
            forwarders[a],
            forwarders[b],
            LinkParams::gigabit(SimDuration::from_micros(100)),
        );
        let (ip_a, ip_b) = (Ipv4Addr::new(10, 39, 0, 1), Ipv4Addr::new(10, 39, 0, 2));
        setups.push(RouterSetup {
            node: forwarders[a],
            iface: Interface {
                port: pa,
                ip: ip_a,
                mac: edge_mac(0xff, 1),
                subnet,
            },
            arp: (ip_b, edge_mac(0xff, 2)),
            default_route: None,
        });
        setups.push(RouterSetup {
            node: forwarders[b],
            iface: Interface {
                port: pb,
                ip: ip_b,
                mac: edge_mac(0xff, 2),
                subnet,
            },
            arp: (ip_a, edge_mac(0xff, 1)),
            default_route: None,
        });
        link
    });

    // --- controllers (supercharged only) ---
    let peer_specs: Vec<PeerSpec> = (0..m)
        .map(|i| PeerSpec {
            id: provider_ip(i),
            mac: provider_mac(i),
            switch_port: sw_port_p[i].0 as u16,
            local_pref: bp.providers[i].local_pref,
            router_id: provider_ip(i),
        })
        .collect();
    let controllers_n = if mode == Mode::Supercharged {
        cfg.controllers
    } else {
        0
    };
    let mut controllers = Vec::new();
    let mut controller_links = Vec::new();
    let mut sw_ctrl_ports = Vec::new();
    let mut controller_cfgs = Vec::new();
    for ci in 0..controllers_n {
        let ctrl_cfg = ControllerConfig {
            name: format!("supercharger-{ci}"),
            seed: cfg.seed.wrapping_add(ci as u64),
            echo_interval: cfg.echo_interval,
            ack_timeout: SimDuration::from_millis(50),
            max_flowmod_attempts: 5,
            asn: 65000,
            router_id: Ipv4Addr::new(99, 99, 99, ci as u8 + 1),
            ip: controller_ip(ci),
            mac: controller_mac(ci),
            engine: supercharger::EngineConfig::new(vnh_pool(), peer_specs.clone()),
            router: RouterLink {
                router_ip: IP_R1,
                router_mac: MAC_R1,
                local_port: 179,
                remote_port: (40000 + ci) as u16,
                hold_time: SimDuration::from_secs(90),
            },
            peers: (0..m)
                .map(|i| PeerLink {
                    spec: peer_specs[i],
                    local_port: (41000 + ci * 100 + i) as u16,
                    remote_port: 179,
                    hold_time: SimDuration::from_secs(90),
                    bfd: (cfg.bfd && i == primary).then(|| BfdConfig {
                        local_discr: (100 + ci * 10) as u32,
                        desired_min_tx: cfg.bfd_interval,
                        required_min_rx: cfg.bfd_interval,
                        detect_mult: 3,
                    }),
                })
                .collect(),
            switch: SwitchLink {
                switch_ip: IP_SWITCH,
                switch_mac: MAC_SWITCH,
                local_port: (45000 + ci) as u16,
            },
            reaction_delay: cfg.reaction_delay,
            rule_grace: SimDuration::from_secs(600),
            portstatus_failover: false,
        };
        controller_cfgs.push(ctrl_cfg.clone());
        let ctrl = world.add_node(Controller::new(ctrl_cfg, PortId(0)));
        let ctrl_link = LinkParams {
            loss: cfg.control_loss,
            ..lanp
        };
        let (ctrl_l, sw_port_ctrl, _) = world.connect(switch, ctrl, ctrl_link);
        sw_ctrl_ports.push(sw_port_ctrl);
        controller_links.push(ctrl_l);
        controllers.push(ctrl);
    }

    // --- switch port registration + control channels ---
    {
        let sw = world.node_mut::<OfSwitch>(switch);
        sw.register_data_port(sw_port_r1);
        for p in &sw_port_p {
            sw.register_data_port(*p);
        }
        sw.register_data_port(sw_port_src);
        for (ci, p) in sw_ctrl_ports.iter().enumerate() {
            sw.register_data_port(*p);
            sw.attach_controller(sc_sim::ChannelPort::listen(
                sc_net::channel::ChannelConfig::default(),
                sc_net::wire::UdpEndpoints {
                    src_mac: MAC_SWITCH,
                    dst_mac: controller_mac(ci),
                    src_ip: IP_SWITCH,
                    dst_ip: controller_ip(ci),
                    src_port: sc_net::wire::udp::port::OPENFLOW,
                    dst_port: (45000 + ci) as u16,
                },
                *p,
                TimerToken(0), // reassigned by attach_controller
            ));
        }
    }

    // --- R1 ---
    {
        let r1n = world.node_mut::<LegacyRouter>(r1);
        r1n.add_interface(Interface {
            port: PortId(0),
            ip: IP_R1,
            mac: MAC_R1,
            subnet: lan(),
        });
        match mode {
            Mode::Stock => {
                for (i, spec) in bp.providers.iter().enumerate() {
                    r1n.add_peer(PeerConfig {
                        local_pref: spec.local_pref,
                        local_port: (40000 + i) as u16,
                        remote_port: 179,
                        bfd: (cfg.bfd && i == primary).then_some(BfdConfig {
                            local_discr: 12,
                            desired_min_tx: cfg.bfd_interval,
                            required_min_rx: cfg.bfd_interval,
                            detect_mult: 3,
                        }),
                        ..PeerConfig::ebgp(provider_ip(i), provider_mac(i), true)
                    });
                }
            }
            Mode::Supercharged => {
                for ci in 0..controllers_n {
                    r1n.add_peer(PeerConfig {
                        local_port: (40000 + ci) as u16,
                        remote_port: 179,
                        local_pref: if cfg.fallback_sessions {
                            CONTROLLER_PREF
                        } else {
                            sc_bgp::decision::DEFAULT_LOCAL_PREF
                        },
                        hold_time: cfg.controller_hold,
                        controller: true,
                        deadline: cfg.controller_deadline,
                        ..PeerConfig::ebgp(controller_ip(ci), controller_mac(ci), true)
                    });
                }
                if cfg.fallback_sessions {
                    // Graceful-degradation shadow plane: direct eBGP to
                    // every provider at the blueprint's preferences —
                    // identical policy to a Stock build, just parked
                    // below CONTROLLER_PREF until degradation promotes
                    // it. The fallback BFD runs detect_mult 2 (vs the
                    // stock plane's 3): worst-case fallback detection is
                    // 2 × interval past the last rx, which never exceeds
                    // the stock session's best case, so a degraded churn
                    // starts no later than the legacy baseline's
                    // regardless of jitter phase.
                    for (i, spec) in bp.providers.iter().enumerate() {
                        r1n.add_peer(PeerConfig {
                            local_pref: spec.local_pref,
                            local_port: (46000 + i) as u16,
                            remote_port: 179,
                            bfd: (cfg.bfd && i == primary).then_some(BfdConfig {
                                local_discr: 12,
                                desired_min_tx: cfg.bfd_interval,
                                required_min_rx: cfg.bfd_interval,
                                detect_mult: 2,
                            }),
                            ..PeerConfig::ebgp(provider_ip(i), provider_mac(i), true)
                        });
                    }
                }
            }
        }
    }

    // --- providers: LAN interface, feed, BGP sessions ---
    for i in 0..m {
        let rn = world.node_mut::<LegacyRouter>(providers[i]);
        rn.add_interface(Interface {
            port: PortId(0),
            ip: provider_ip(i),
            mac: provider_mac(i),
            subnet: lan(),
        });
        let bfd_for = |ci: usize| {
            (cfg.bfd && i == primary).then(|| BfdConfig {
                local_discr: (20 + i * 10 + ci) as u32,
                desired_min_tx: cfg.bfd_interval,
                required_min_rx: cfg.bfd_interval,
                detect_mult: 3,
            })
        };
        match mode {
            Mode::Stock => {
                rn.add_peer(PeerConfig {
                    local_port: 179,
                    remote_port: (40000 + i) as u16,
                    bfd: bfd_for(0),
                    originate: feeds[i].clone(),
                    ..PeerConfig::ebgp(IP_R1, MAC_R1, false)
                });
            }
            Mode::Supercharged => {
                for ci in 0..controllers_n {
                    rn.add_peer(PeerConfig {
                        local_port: 179,
                        remote_port: (41000 + ci * 100 + i) as u16,
                        bfd: bfd_for(ci),
                        originate: feeds[i].clone(),
                        ..PeerConfig::ebgp(controller_ip(ci), controller_mac(ci), false)
                    });
                }
                if cfg.fallback_sessions {
                    rn.add_peer(PeerConfig {
                        local_port: 179,
                        remote_port: (46000 + i) as u16,
                        bfd: (cfg.bfd && i == primary).then(|| BfdConfig {
                            local_discr: (80 + i) as u32,
                            desired_min_tx: cfg.bfd_interval,
                            required_min_rx: cfg.bfd_interval,
                            // Mirrors the R1-side fallback mult: degraded
                            // detection beats the stock plane's worst case.
                            detect_mult: 2,
                        }),
                        originate: feeds[i].clone(),
                        ..PeerConfig::ebgp(IP_R1, MAC_R1, false)
                    });
                }
            }
        }
    }

    // --- delivery-fabric interfaces, ARP and static routes ---
    for s in setups {
        let rn = world.node_mut::<LegacyRouter>(s.node);
        rn.add_interface(s.iface);
        rn.add_static_arp(s.arp.0, s.arp.1);
        if let Some(nh) = s.default_route {
            rn.add_static_route(StaticRoute {
                prefix: Ipv4Prefix::DEFAULT,
                next_hop: nh,
            });
        }
    }

    // Shard assignment for the parallel kernel: the fabric hub and the
    // measurement endpoints stay on shard 0; each provider and each
    // forwarder lands round-robin. Reports are byte-identical at any
    // shard count (the sharded regression tests prove it), so this is
    // purely a load-spreading choice.
    if let sc_sim::SchedulerKind::Sharded { shards } = cfg.scheduler {
        let shards = shards.max(1);
        let count = 2 + m + forwarders.len() + 2 + controllers.len();
        let mut map = vec![0u32; count];
        for (i, p) in providers.iter().enumerate() {
            map[p.0] = (i % shards) as u32;
        }
        for (j, f) in forwarders.iter().enumerate() {
            map[f.0] = (j % shards) as u32;
        }
        world.set_shard_map(map);
    }

    BuiltScenario {
        world,
        cfg: cfg.clone(),
        mode,
        blueprint: bp,
        switch,
        r1,
        providers,
        provider_ips: (0..m).map(provider_ip).collect(),
        forwarders,
        controllers,
        controller_links,
        source,
        sink,
        provider_switch_links,
        provider_path_links,
        forwarder_up_links,
        ring_closer_link,
        flow_ips,
        universe,
        feeds,
        primary,
        replay_peers,
        controller_cfgs,
    }
}

impl BuiltScenario {
    /// The primary provider's LAN address.
    pub fn primary_ip(&self) -> Ipv4Addr {
        self.provider_ips[self.primary]
    }

    /// Run until R1's control plane has fully converged (all feed
    /// prefixes installed, walker quiescent, BFD fast). Returns the
    /// instant of quiescence; panics if convergence takes implausibly
    /// long. Mirrors `ConvergenceLab::run_until_converged`, generalized
    /// to M providers.
    pub fn run_until_converged(&mut self) -> SimTime {
        let budget = SimDuration::from_secs(60)
            + self.cfg.cal.fib_entry_update * (self.cfg.prefixes as u64 * 3);
        let deadline = self.world.now() + budget;
        loop {
            self.world.run_for(SimDuration::from_millis(500));
            let installed = {
                let r1 = self.world.node::<LegacyRouter>(self.r1);
                r1.fib().len() >= self.cfg.prefixes as usize && r1.is_quiescent()
            };
            if installed && self.bfd_ready() {
                // One settle round for in-flight control traffic.
                self.world.run_for(SimDuration::from_millis(500));
                let r1 = self.world.node::<LegacyRouter>(self.r1);
                if r1.fib().len() >= self.cfg.prefixes as usize
                    && r1.is_quiescent()
                    && self.bfd_ready()
                {
                    return self.world.now();
                }
            }
            assert!(
                self.world.now() < deadline,
                "control plane failed to converge within {budget} ({} of {} prefixes installed)",
                self.world.node::<LegacyRouter>(self.r1).fib().len(),
                self.cfg.prefixes
            );
        }
    }

    /// All configured BFD sessions Up with the fast negotiated
    /// detection time.
    pub fn bfd_ready(&self) -> bool {
        if !self.cfg.bfd {
            return true;
        }
        let fast = self.cfg.bfd_interval * 4; // detect_mult(3) + margin
        let primary_ip = self.primary_ip();
        match self.mode {
            Mode::Stock => {
                match self
                    .world
                    .node::<LegacyRouter>(self.r1)
                    .bfd_snapshot(primary_ip)
                {
                    Some((sc_bfd::BfdState::Up, det)) => det <= fast,
                    _ => false,
                }
            }
            Mode::Supercharged => {
                let ctrl_ok = self.controllers.iter().all(|&c| {
                    match self.world.node::<Controller>(c).bfd_snapshot(primary_ip) {
                        Some((sc_bfd::BfdState::Up, det)) => det <= fast,
                        _ => false,
                    }
                });
                let fallback_ok = !self.cfg.fallback_sessions
                    || matches!(
                        self.world
                            .node::<LegacyRouter>(self.r1)
                            .bfd_snapshot(primary_ip),
                        Some((sc_bfd::BfdState::Up, det)) if det <= fast
                    );
                ctrl_ok && fallback_ok
            }
        }
    }

    /// When the primary's failure was detected (first PeerDown at the
    /// converging party after `after`), if observed.
    pub fn detected_at(&self, after: SimTime) -> Option<SimTime> {
        let primary_ip = self.primary_ip();
        match self.mode {
            Mode::Stock => self
                .world
                .node::<LegacyRouter>(self.r1)
                .events
                .iter()
                .find_map(|(t, e)| match e {
                    sc_router::node::RouterEvent::PeerDown { peer, .. }
                        if *peer == primary_ip && *t >= after =>
                    {
                        Some(*t)
                    }
                    _ => None,
                }),
            Mode::Supercharged => self
                .world
                .node::<Controller>(self.controllers[0])
                .events
                .iter()
                .find_map(|(t, e)| match e {
                    supercharger::controller::ControllerEvent::PeerDown(ip)
                        if *ip == primary_ip && *t >= after =>
                    {
                        Some(*t)
                    }
                    _ => None,
                }),
        }
    }

    /// Flow rewrites issued by the controller (supercharged only).
    pub fn flow_rewrites(&self) -> Option<usize> {
        match self.mode {
            Mode::Stock => None,
            Mode::Supercharged => self
                .world
                .node::<Controller>(self.controllers[0])
                .events
                .iter()
                .find_map(|(_, e)| match e {
                    supercharger::controller::ControllerEvent::FailoverIssued {
                        rewrites, ..
                    } => Some(*rewrites),
                    _ => None,
                }),
        }
    }

    /// Router-side degraded time overlapping `[from, until]` — how long
    /// R1 was driving the FIB itself (every controller session down)
    /// within one measurement window. Always zero in legacy mode (no
    /// controller sessions exist to lose).
    pub fn degraded_in_window(&self, from: SimTime, until: SimTime) -> SimDuration {
        let now = self.world.now();
        self.world
            .node::<LegacyRouter>(self.r1)
            .degraded_intervals(now)
            .iter()
            .map(|&(start, end)| {
                let lo = start.max(from);
                let hi = end.min(until);
                if hi > lo {
                    hi - lo
                } else {
                    SimDuration::ZERO
                }
            })
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Flow-mod batches the controllers re-sent after a missed barrier
    /// ack, summed across replicas (supercharged only). A replica that
    /// crashed and restarted counts from its fresh process — retry
    /// counters are process state, not oracle state.
    pub fn flowmod_retries(&self) -> Option<u64> {
        match self.mode {
            Mode::Stock => None,
            Mode::Supercharged => Some(
                self.controllers
                    .iter()
                    .map(|&c| self.world.node::<Controller>(c).stats.flowmod_retries)
                    .sum(),
            ),
        }
    }
}
