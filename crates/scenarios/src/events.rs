//! Typed, serializable failure scripts.
//!
//! A script is a schedule of [`ScenarioEvent`]s at offsets relative to
//! the script origin `t0` (the instant the measurement window opens).
//! [`EventScript::apply`] compiles the schedule down to
//! [`sc_sim::World`] failure injections — this replaces the single
//! "cut R2 at `t_fail`" baked into `run_convergence_trial`.
//!
//! Scripts serialize to a line-oriented text form (`Display` /
//! `FromStr`) so suites can be described in files and reports can
//! embed the exact schedule they ran:
//!
//! ```text
//! script primary-flap
//! link_flap provider_switch:primary @0us period=250000us cycles=3
//! ```
//!
//! Semantics note: session restart is modeled end-to-end (RFC 4271
//! §9.4): a session torn down by BFD or the hold timer drops its
//! transport, reconnects, and replays the originating side's
//! Adj-RIB-Out on re-establishment. Flap and reset scripts therefore
//! measure a full down→up→re-converge cycle per epoch — use
//! [`EventScript::epochs`] to carve one measurement window per cycle.
//! Route churn over a *live* session is exercised separately by
//! [`ScenarioEvent::ChurnBurst`].

use crate::builder::BuiltScenario;
use sc_bgp::msg::UpdateMsg;
use sc_net::{Ipv4Prefix, SimDuration, SimTime};
use sc_router::LegacyRouter;
use sc_sim::{LinkId, NodeId};
use std::fmt;
use std::str::FromStr;

/// Which provider an event targets, resolved against the topology's
/// preference ranking at apply time (scripts stay topology-portable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProviderSel {
    /// The highest-preference provider.
    Primary,
    /// The provider ranked `n` by preference (0 = primary).
    Rank(usize),
    /// A literal provider index.
    Index(usize),
}

impl fmt::Display for ProviderSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProviderSel::Primary => write!(f, "primary"),
            ProviderSel::Rank(n) => write!(f, "rank:{n}"),
            ProviderSel::Index(n) => write!(f, "index:{n}"),
        }
    }
}

impl FromStr for ProviderSel {
    type Err = String;
    fn from_str(s: &str) -> Result<ProviderSel, String> {
        if s == "primary" {
            return Ok(ProviderSel::Primary);
        }
        if let Some(n) = s.strip_prefix("rank:") {
            return Ok(ProviderSel::Rank(n.parse().map_err(|e| format!("{e}"))?));
        }
        if let Some(n) = s.strip_prefix("index:") {
            return Ok(ProviderSel::Index(n.parse().map_err(|e| format!("{e}"))?));
        }
        Err(format!("bad provider selector {s:?}"))
    }
}

/// A cuttable link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkRef {
    /// Provider ↔ switch (the paper's "pull the cable").
    ProviderSwitch(ProviderSel),
    /// A provider's first delivery edge toward the sink.
    ProviderPath(ProviderSel),
    /// Forwarder j's uplink toward the sink.
    ForwarderUplink(usize),
    /// The routeless arc closing a ring (cutting it must be harmless —
    /// the null-test).
    RingCloser,
    /// Controller replica `c`'s control channel to the switch (the
    /// chaos layer's favorite victim; legacy builds have none and
    /// events targeting it no-op).
    ControllerSwitch(usize),
}

impl fmt::Display for LinkRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkRef::ProviderSwitch(p) => write!(f, "provider_switch:{p}"),
            LinkRef::ProviderPath(p) => write!(f, "provider_path:{p}"),
            LinkRef::ForwarderUplink(j) => write!(f, "forwarder_uplink:{j}"),
            LinkRef::RingCloser => write!(f, "ring_closer"),
            LinkRef::ControllerSwitch(c) => write!(f, "controller_switch:{c}"),
        }
    }
}

impl FromStr for LinkRef {
    type Err = String;
    fn from_str(s: &str) -> Result<LinkRef, String> {
        if s == "ring_closer" {
            return Ok(LinkRef::RingCloser);
        }
        if let Some(rest) = s.strip_prefix("provider_switch:") {
            return Ok(LinkRef::ProviderSwitch(rest.parse()?));
        }
        if let Some(rest) = s.strip_prefix("provider_path:") {
            return Ok(LinkRef::ProviderPath(rest.parse()?));
        }
        if let Some(rest) = s.strip_prefix("forwarder_uplink:") {
            return Ok(LinkRef::ForwarderUplink(
                rest.parse().map_err(|e| format!("{e}"))?,
            ));
        }
        if let Some(rest) = s.strip_prefix("controller_switch:") {
            return Ok(LinkRef::ControllerSwitch(
                rest.parse().map_err(|e| format!("{e}"))?,
            ));
        }
        Err(format!("bad link ref {s:?}"))
    }
}

/// A crashable node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRef {
    Provider(ProviderSel),
    Forwarder(usize),
    Controller(usize),
    /// The OpenFlow switch (partition endpoint; crashing it is legal
    /// chaos too).
    Switch,
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Provider(p) => write!(f, "provider:{p}"),
            NodeRef::Forwarder(j) => write!(f, "forwarder:{j}"),
            NodeRef::Controller(c) => write!(f, "controller:{c}"),
            NodeRef::Switch => write!(f, "switch"),
        }
    }
}

impl FromStr for NodeRef {
    type Err = String;
    fn from_str(s: &str) -> Result<NodeRef, String> {
        if s == "switch" {
            return Ok(NodeRef::Switch);
        }
        if let Some(rest) = s.strip_prefix("provider:") {
            return Ok(NodeRef::Provider(rest.parse()?));
        }
        if let Some(rest) = s.strip_prefix("forwarder:") {
            return Ok(NodeRef::Forwarder(
                rest.parse().map_err(|e| format!("{e}"))?,
            ));
        }
        if let Some(rest) = s.strip_prefix("controller:") {
            return Ok(NodeRef::Controller(
                rest.parse().map_err(|e| format!("{e}"))?,
            ));
        }
        Err(format!("bad node ref {s:?}"))
    }
}

/// One scheduled event; all offsets are relative to the script origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioEvent {
    LinkDown {
        link: LinkRef,
        at: SimDuration,
    },
    LinkUp {
        link: LinkRef,
        at: SimDuration,
    },
    /// `cycles` × (down, then up half a period later).
    LinkFlap {
        link: LinkRef,
        at: SimDuration,
        period: SimDuration,
        cycles: u32,
    },
    NodeCrash {
        node: NodeRef,
        at: SimDuration,
    },
    /// Carrier outage of `outage` on the provider's switch link — the
    /// operational shape of a BGP session reset.
    SessionReset {
        provider: ProviderSel,
        at: SimDuration,
        outage: SimDuration,
    },
    /// The provider withdraws its first `count` prefixes.
    WithdrawBurst {
        provider: ProviderSel,
        at: SimDuration,
        count: u32,
    },
    /// `cycles` × (withdraw first `count` prefixes, re-announce half a
    /// period later) — sustained route churn over a live session.
    ChurnBurst {
        provider: ProviderSel,
        at: SimDuration,
        count: u32,
        cycles: u32,
        period: SimDuration,
    },
    /// Crash controller replica `replica` (all its links drop) — the
    /// replica-divergence probe, typically fired mid-failover. A legacy
    /// build has no replicas and ignores it, so one script drives both
    /// sides of a comparison cell.
    CrashReplica {
        replica: usize,
        at: SimDuration,
    },
    /// Partition controller replica `replica` from the switch for
    /// `delay`, then restore — the slow-replica divergence probe.
    /// Ignored in legacy builds, like [`ScenarioEvent::CrashReplica`].
    DelayReplica {
        replica: usize,
        at: SimDuration,
        delay: SimDuration,
    },
    /// Chaos: seeded stochastic faults on a link from `at` to `until` —
    /// drop each frame with probability `loss_ppm` and flip one byte
    /// with probability `corrupt_ppm` (both parts-per-million, so the
    /// event stays `Eq` and text-exact). Healing restores the link's
    /// apply-time parameters. Faults apply to frames *emitted* while
    /// active; in-flight frames are unaffected.
    SetLinkFaults {
        link: LinkRef,
        at: SimDuration,
        loss_ppm: u32,
        corrupt_ppm: u32,
        until: SimDuration,
    },
    /// Chaos: sever every wired link between `a` and `b` at `at`,
    /// restore at `heal`. A pair with no wired link fails validation;
    /// a controller endpoint a legacy build lacks no-ops.
    Partition {
        a: NodeRef,
        b: NodeRef,
        at: SimDuration,
        heal: SimDuration,
    },
    /// Chaos: crash controller replica `replica` (process death — links
    /// drop, liveness watchdogs fire, the router degrades). Unlike
    /// [`ScenarioEvent::CrashReplica`] this *is* a convergence onset:
    /// it opens its own measurement window rather than perturbing one
    /// already in progress. Legacy builds no-op.
    CrashController {
        replica: usize,
        at: SimDuration,
    },
    /// Chaos: boot a fresh controller process into crashed slot
    /// `replica` (links return, handshakes and engine resync rerun —
    /// the reconciliation path). No-op if the slot is still alive or
    /// the build keeps no restart factory (legacy, Fig. 4 delegation).
    RestartController {
        replica: usize,
        at: SimDuration,
    },
    /// Chaos: from `at`, the switch silently discards the next `count`
    /// FlowMods and swallows barriers while the budget lasts — the
    /// controller sees missing acks and must retry (or give up into
    /// degradation).
    DropFlowMods {
        count: u32,
        at: SimDuration,
    },
}

impl ScenarioEvent {
    /// The last instant this event touches the world.
    pub fn end(&self) -> SimDuration {
        match *self {
            ScenarioEvent::LinkDown { at, .. }
            | ScenarioEvent::LinkUp { at, .. }
            | ScenarioEvent::NodeCrash { at, .. }
            | ScenarioEvent::WithdrawBurst { at, .. }
            | ScenarioEvent::CrashReplica { at, .. }
            | ScenarioEvent::CrashController { at, .. }
            | ScenarioEvent::RestartController { at, .. }
            | ScenarioEvent::DropFlowMods { at, .. } => at,
            ScenarioEvent::LinkFlap {
                at, period, cycles, ..
            } => at + period * cycles.saturating_sub(1) as u64 + period / 2,
            ScenarioEvent::SessionReset { at, outage, .. } => at + outage,
            ScenarioEvent::DelayReplica { at, delay, .. } => at + delay,
            ScenarioEvent::SetLinkFaults { until, .. } => until,
            ScenarioEvent::Partition { heal, .. } => heal,
            ScenarioEvent::ChurnBurst {
                at, period, cycles, ..
            } => at + period * cycles.saturating_sub(1) as u64 + period / 2,
        }
    }

    /// The failure *onsets* of this event, one per cycle — the instants
    /// a convergence event begins (restorations are not onsets; they
    /// belong to the cycle they end). A pure [`ScenarioEvent::LinkUp`]
    /// contributes none.
    pub fn epochs(&self) -> Vec<SimDuration> {
        match *self {
            ScenarioEvent::LinkDown { at, .. }
            | ScenarioEvent::NodeCrash { at, .. }
            | ScenarioEvent::WithdrawBurst { at, .. }
            | ScenarioEvent::SessionReset { at, .. } => vec![at],
            // Chaos onsets that start perturbing traffic or degrade the
            // router open their own measurement window.
            ScenarioEvent::SetLinkFaults { at, .. }
            | ScenarioEvent::Partition { at, .. }
            | ScenarioEvent::CrashController { at, .. } => vec![at],
            // Restorations are not onsets, and replica events perturb
            // the control plane *during* a co-scripted failover rather
            // than starting a convergence cycle of their own. A
            // controller restart and a flow-mod drop budget likewise
            // only modulate a window already open.
            ScenarioEvent::LinkUp { .. }
            | ScenarioEvent::CrashReplica { .. }
            | ScenarioEvent::DelayReplica { .. }
            | ScenarioEvent::RestartController { .. }
            | ScenarioEvent::DropFlowMods { .. } => Vec::new(),
            ScenarioEvent::LinkFlap {
                at, period, cycles, ..
            }
            | ScenarioEvent::ChurnBurst {
                at, period, cycles, ..
            } => (0..cycles as u64).map(|c| at + period * c).collect(),
        }
    }
}

fn fmt_dur(d: SimDuration) -> String {
    // Lossless: whole microseconds render as `us` for readability,
    // anything finer falls back to `ns` so Display/FromStr round-trips
    // exactly.
    if d.as_nanos().is_multiple_of(1_000) {
        format!("{}us", d.as_nanos() / 1_000)
    } else {
        format!("{}ns", d.as_nanos())
    }
}

fn parse_dur(s: &str) -> Result<SimDuration, String> {
    let (num, mul) = if let Some(n) = s.strip_suffix("us") {
        (n, 1_000u64)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = s.strip_suffix("ns") {
        (n, 1)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        return Err(format!("duration {s:?} needs a ns/us/ms/s suffix"));
    };
    let v: u64 = num.parse().map_err(|e| format!("duration {s:?}: {e}"))?;
    v.checked_mul(mul)
        .map(SimDuration::from_nanos)
        .ok_or_else(|| format!("duration {s:?} overflows"))
}

fn kv<'a>(tok: &'a str, key: &str) -> Result<&'a str, String> {
    tok.strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=…, got {tok:?}"))
}

fn parse_ppm(s: &str) -> Result<u32, String> {
    let num = s
        .strip_suffix("ppm")
        .ok_or_else(|| format!("probability {s:?} needs a ppm suffix"))?;
    let v: u32 = num.parse().map_err(|e| format!("ppm {s:?}: {e}"))?;
    if v > 1_000_000 {
        return Err(format!("{v}ppm exceeds 1000000 (certainty)"));
    }
    Ok(v)
}

impl fmt::Display for ScenarioEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScenarioEvent::LinkDown { link, at } => {
                write!(f, "link_down {link} @{}", fmt_dur(at))
            }
            ScenarioEvent::LinkUp { link, at } => write!(f, "link_up {link} @{}", fmt_dur(at)),
            ScenarioEvent::LinkFlap {
                link,
                at,
                period,
                cycles,
            } => write!(
                f,
                "link_flap {link} @{} period={} cycles={cycles}",
                fmt_dur(at),
                fmt_dur(period)
            ),
            ScenarioEvent::NodeCrash { node, at } => {
                write!(f, "node_crash {node} @{}", fmt_dur(at))
            }
            ScenarioEvent::SessionReset {
                provider,
                at,
                outage,
            } => write!(
                f,
                "session_reset provider:{provider} @{} outage={}",
                fmt_dur(at),
                fmt_dur(outage)
            ),
            ScenarioEvent::WithdrawBurst {
                provider,
                at,
                count,
            } => write!(
                f,
                "withdraw_burst provider:{provider} @{} count={count}",
                fmt_dur(at)
            ),
            ScenarioEvent::ChurnBurst {
                provider,
                at,
                count,
                cycles,
                period,
            } => write!(
                f,
                "churn_burst provider:{provider} @{} count={count} cycles={cycles} period={}",
                fmt_dur(at),
                fmt_dur(period)
            ),
            ScenarioEvent::CrashReplica { replica, at } => {
                write!(f, "crash_replica controller:{replica} @{}", fmt_dur(at))
            }
            ScenarioEvent::DelayReplica { replica, at, delay } => write!(
                f,
                "delay_replica controller:{replica} @{} delay={}",
                fmt_dur(at),
                fmt_dur(delay)
            ),
            ScenarioEvent::SetLinkFaults {
                link,
                at,
                loss_ppm,
                corrupt_ppm,
                until,
            } => write!(
                f,
                "set_link_faults {link} @{} loss={loss_ppm}ppm corrupt={corrupt_ppm}ppm until={}",
                fmt_dur(at),
                fmt_dur(until)
            ),
            ScenarioEvent::Partition { a, b, at, heal } => write!(
                f,
                "partition {a} {b} @{} heal={}",
                fmt_dur(at),
                fmt_dur(heal)
            ),
            ScenarioEvent::CrashController { replica, at } => {
                write!(f, "crash_controller controller:{replica} @{}", fmt_dur(at))
            }
            ScenarioEvent::RestartController { replica, at } => write!(
                f,
                "restart_controller controller:{replica} @{}",
                fmt_dur(at)
            ),
            ScenarioEvent::DropFlowMods { count, at } => {
                write!(f, "drop_flow_mods @{} count={count}", fmt_dur(at))
            }
        }
    }
}

impl FromStr for ScenarioEvent {
    type Err = String;
    fn from_str(line: &str) -> Result<ScenarioEvent, String> {
        let toks: Vec<&str> = line.split_whitespace().collect();
        let at_tok = |i: usize| -> Result<SimDuration, String> {
            toks.get(i)
                .and_then(|t| t.strip_prefix('@'))
                .ok_or_else(|| format!("expected @offset in {line:?}"))
                .and_then(parse_dur)
        };
        match toks.first().copied() {
            Some("link_down") => Ok(ScenarioEvent::LinkDown {
                link: toks.get(1).ok_or("missing link")?.parse()?,
                at: at_tok(2)?,
            }),
            Some("link_up") => Ok(ScenarioEvent::LinkUp {
                link: toks.get(1).ok_or("missing link")?.parse()?,
                at: at_tok(2)?,
            }),
            Some("link_flap") => Ok(ScenarioEvent::LinkFlap {
                link: toks.get(1).ok_or("missing link")?.parse()?,
                at: at_tok(2)?,
                period: parse_dur(kv(toks.get(3).ok_or("missing period")?, "period")?)?,
                cycles: kv(toks.get(4).ok_or("missing cycles")?, "cycles")?
                    .parse()
                    .map_err(|e| format!("{e}"))?,
            }),
            Some("node_crash") => Ok(ScenarioEvent::NodeCrash {
                node: toks.get(1).ok_or("missing node")?.parse()?,
                at: at_tok(2)?,
            }),
            Some("session_reset") => Ok(ScenarioEvent::SessionReset {
                provider: sel_of(toks.get(1).ok_or("missing provider")?)?,
                at: at_tok(2)?,
                outage: parse_dur(kv(toks.get(3).ok_or("missing outage")?, "outage")?)?,
            }),
            Some("withdraw_burst") => Ok(ScenarioEvent::WithdrawBurst {
                provider: sel_of(toks.get(1).ok_or("missing provider")?)?,
                at: at_tok(2)?,
                count: kv(toks.get(3).ok_or("missing count")?, "count")?
                    .parse()
                    .map_err(|e| format!("{e}"))?,
            }),
            Some("churn_burst") => Ok(ScenarioEvent::ChurnBurst {
                provider: sel_of(toks.get(1).ok_or("missing provider")?)?,
                at: at_tok(2)?,
                count: kv(toks.get(3).ok_or("missing count")?, "count")?
                    .parse()
                    .map_err(|e| format!("{e}"))?,
                cycles: kv(toks.get(4).ok_or("missing cycles")?, "cycles")?
                    .parse()
                    .map_err(|e| format!("{e}"))?,
                period: parse_dur(kv(toks.get(5).ok_or("missing period")?, "period")?)?,
            }),
            Some("crash_replica") => Ok(ScenarioEvent::CrashReplica {
                replica: ctrl_of(toks.get(1).ok_or("missing controller")?)?,
                at: at_tok(2)?,
            }),
            Some("delay_replica") => Ok(ScenarioEvent::DelayReplica {
                replica: ctrl_of(toks.get(1).ok_or("missing controller")?)?,
                at: at_tok(2)?,
                delay: parse_dur(kv(toks.get(3).ok_or("missing delay")?, "delay")?)?,
            }),
            Some("set_link_faults") => Ok(ScenarioEvent::SetLinkFaults {
                link: toks.get(1).ok_or("missing link")?.parse()?,
                at: at_tok(2)?,
                loss_ppm: parse_ppm(kv(toks.get(3).ok_or("missing loss")?, "loss")?)?,
                corrupt_ppm: parse_ppm(kv(toks.get(4).ok_or("missing corrupt")?, "corrupt")?)?,
                until: parse_dur(kv(toks.get(5).ok_or("missing until")?, "until")?)?,
            }),
            Some("partition") => Ok(ScenarioEvent::Partition {
                a: toks.get(1).ok_or("missing endpoint a")?.parse()?,
                b: toks.get(2).ok_or("missing endpoint b")?.parse()?,
                at: at_tok(3)?,
                heal: parse_dur(kv(toks.get(4).ok_or("missing heal")?, "heal")?)?,
            }),
            Some("crash_controller") => Ok(ScenarioEvent::CrashController {
                replica: ctrl_of(toks.get(1).ok_or("missing controller")?)?,
                at: at_tok(2)?,
            }),
            Some("restart_controller") => Ok(ScenarioEvent::RestartController {
                replica: ctrl_of(toks.get(1).ok_or("missing controller")?)?,
                at: at_tok(2)?,
            }),
            Some("drop_flow_mods") => Ok(ScenarioEvent::DropFlowMods {
                at: at_tok(1)?,
                count: kv(toks.get(2).ok_or("missing count")?, "count")?
                    .parse()
                    .map_err(|e| format!("{e}"))?,
            }),
            other => Err(format!("unknown event {other:?}")),
        }
    }
}

fn sel_of(tok: &str) -> Result<ProviderSel, String> {
    tok.strip_prefix("provider:")
        .ok_or_else(|| format!("expected provider:…, got {tok:?}"))?
        .parse()
}

fn ctrl_of(tok: &str) -> Result<usize, String> {
    tok.strip_prefix("controller:")
        .ok_or_else(|| format!("expected controller:…, got {tok:?}"))?
        .parse()
        .map_err(|e| format!("{e}"))
}

/// A named schedule of events.
#[derive(Clone, Debug, PartialEq)]
pub struct EventScript {
    pub name: String,
    pub events: Vec<ScenarioEvent>,
}

impl EventScript {
    pub fn new(name: &str, events: Vec<ScenarioEvent>) -> EventScript {
        EventScript {
            name: name.to_string(),
            events,
        }
    }

    /// The paper's failure: cut the primary's cable at the origin.
    pub fn primary_cut() -> EventScript {
        EventScript::new(
            "primary-cut",
            vec![ScenarioEvent::LinkDown {
                link: LinkRef::ProviderSwitch(ProviderSel::Primary),
                at: SimDuration::ZERO,
            }],
        )
    }

    /// Flap the primary's cable: `cycles` × (down, up ½ period later).
    pub fn primary_flap(period: SimDuration, cycles: u32) -> EventScript {
        EventScript::new(
            "primary-flap",
            vec![ScenarioEvent::LinkFlap {
                link: LinkRef::ProviderSwitch(ProviderSel::Primary),
                at: SimDuration::ZERO,
                period,
                cycles,
            }],
        )
    }

    /// Crash the primary provider outright (all its links drop).
    pub fn primary_crash() -> EventScript {
        EventScript::new(
            "primary-crash",
            vec![ScenarioEvent::NodeCrash {
                node: NodeRef::Provider(ProviderSel::Primary),
                at: SimDuration::ZERO,
            }],
        )
    }

    /// Reset the primary's session (short carrier outage).
    pub fn primary_session_reset(outage: SimDuration) -> EventScript {
        EventScript::new(
            "session-reset",
            vec![ScenarioEvent::SessionReset {
                provider: ProviderSel::Primary,
                at: SimDuration::ZERO,
                outage,
            }],
        )
    }

    /// The primary withdraws its first `count` prefixes.
    pub fn withdraw_burst(count: u32) -> EventScript {
        EventScript::new(
            "withdraw-burst",
            vec![ScenarioEvent::WithdrawBurst {
                provider: ProviderSel::Primary,
                at: SimDuration::ZERO,
                count,
            }],
        )
    }

    /// Replica-divergence probe: cut the primary at the origin and
    /// crash controller replica `replica` mid-failover, `after` later.
    pub fn replica_crash(replica: usize, after: SimDuration) -> EventScript {
        EventScript::new(
            "replica-crash",
            vec![
                ScenarioEvent::LinkDown {
                    link: LinkRef::ProviderSwitch(ProviderSel::Primary),
                    at: SimDuration::ZERO,
                },
                ScenarioEvent::CrashReplica { replica, at: after },
            ],
        )
    }

    /// Cut the primary and partition controller replica `replica` for
    /// `delay`, starting `after` into the failover.
    pub fn replica_delay(replica: usize, after: SimDuration, delay: SimDuration) -> EventScript {
        EventScript::new(
            "replica-delay",
            vec![
                ScenarioEvent::LinkDown {
                    link: LinkRef::ProviderSwitch(ProviderSel::Primary),
                    at: SimDuration::ZERO,
                },
                ScenarioEvent::DelayReplica {
                    replica,
                    at: after,
                    delay,
                },
            ],
        )
    }

    /// Staggered double failure: cut the primary, then crash the
    /// third-ranked provider shortly after (needs ≥3 providers).
    pub fn staggered_double(gap: SimDuration) -> EventScript {
        EventScript::new(
            "staggered-double",
            vec![
                ScenarioEvent::LinkDown {
                    link: LinkRef::ProviderSwitch(ProviderSel::Primary),
                    at: SimDuration::ZERO,
                },
                ScenarioEvent::NodeCrash {
                    node: NodeRef::Provider(ProviderSel::Rank(2)),
                    at: gap,
                },
            ],
        )
    }

    /// A seeded chaos schedule: the paper's primary cut at the origin
    /// (the measured convergence event) overlaid with a deterministic
    /// pseudo-random mix of fail-safe stressors — a lossy/corrupting
    /// window on the controller channel, a dropped-flow-mod budget, a
    /// controller crash/restart pair, and a short switch↔controller
    /// partition after the restart. A pure function of `seed`
    /// (splitmix64 throughout): the same seed always yields the same
    /// script, so chaos cells stay byte-identical across reruns and
    /// schedulers. Every chaos target no-ops in a legacy build, so one
    /// script drives both sides of a comparison cell.
    pub fn chaos(seed: u64) -> EventScript {
        let mut ctr = 0u64;
        let mut next = |hi: u64| -> u64 {
            ctr += 1;
            splitmix64(seed.wrapping_add(ctr.wrapping_mul(0x9e37_79b9_7f4a_7c15))) % hi
        };
        let us = SimDuration::from_micros;
        let fault_at = next(20_000);
        let drop_at = next(5_000);
        let crash_at = 20_000 + next(40_000);
        let restart_at = crash_at + 50_000 + next(100_000);
        let part_at = restart_at + 10_000 + next(20_000);
        let events = vec![
            ScenarioEvent::LinkDown {
                link: LinkRef::ProviderSwitch(ProviderSel::Primary),
                at: SimDuration::ZERO,
            },
            ScenarioEvent::SetLinkFaults {
                link: LinkRef::ControllerSwitch(0),
                at: us(fault_at),
                loss_ppm: (50_000 + next(150_000)) as u32,
                corrupt_ppm: next(50_000) as u32,
                until: us(fault_at + 100_000 + next(200_000)),
            },
            ScenarioEvent::DropFlowMods {
                count: (1 + next(3)) as u32,
                at: us(drop_at),
            },
            ScenarioEvent::CrashController {
                replica: 0,
                at: us(crash_at),
            },
            ScenarioEvent::RestartController {
                replica: 0,
                at: us(restart_at),
            },
            ScenarioEvent::Partition {
                a: NodeRef::Controller(0),
                b: NodeRef::Switch,
                at: us(part_at),
                heal: us(part_at + 20_000 + next(40_000)),
            },
        ];
        EventScript::new("chaos", events)
    }

    /// The last instant the script touches the world (relative to the
    /// origin).
    pub fn end(&self) -> SimDuration {
        self.events
            .iter()
            .map(|e| e.end())
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The merged, ascending failure onsets of every event — the
    /// script's convergence epochs, one measurement window each (see
    /// `sc_lab::harness::plan_cycle_measurement`). Scripts without an
    /// onset (e.g. a lone `link_up`) measure a single window at the
    /// origin.
    pub fn epochs(&self) -> Vec<SimDuration> {
        let mut out: Vec<SimDuration> = self.events.iter().flat_map(|e| e.epochs()).collect();
        out.sort_unstable();
        out.dedup();
        if out.is_empty() {
            out.push(SimDuration::ZERO);
        }
        out
    }

    /// Check every target resolves in `scn`'s topology.
    pub fn validate(&self, scn: &BuiltScenario) -> Result<(), String> {
        for ev in &self.events {
            match *ev {
                ScenarioEvent::LinkDown { link, .. }
                | ScenarioEvent::LinkUp { link, .. }
                | ScenarioEvent::LinkFlap { link, .. } => {
                    resolve_link(scn, link)?;
                }
                ScenarioEvent::NodeCrash { node, .. } => {
                    resolve_node(scn, node)?;
                }
                ScenarioEvent::SessionReset { provider, .. }
                | ScenarioEvent::WithdrawBurst { provider, .. }
                | ScenarioEvent::ChurnBurst { provider, .. } => {
                    resolve_provider(scn, provider)?;
                }
                ScenarioEvent::CrashReplica { replica, .. }
                | ScenarioEvent::DelayReplica { replica, .. }
                | ScenarioEvent::CrashController { replica, .. }
                | ScenarioEvent::RestartController { replica, .. } => {
                    // Legacy builds have no replicas and ignore these
                    // events; a supercharged build must have the named
                    // replica.
                    if !scn.controllers.is_empty() && replica >= scn.controllers.len() {
                        return Err(format!(
                            "controller {replica} out of range ({} replicas)",
                            scn.controllers.len()
                        ));
                    }
                }
                ScenarioEvent::SetLinkFaults {
                    link, at, until, ..
                } => {
                    // A fault window on a controller link a legacy
                    // build lacks is a no-op, like the replica events.
                    if !matches!(link, LinkRef::ControllerSwitch(_)) || !scn.controllers.is_empty()
                    {
                        resolve_link(scn, link)?;
                    }
                    if until <= at {
                        return Err(format!("set_link_faults heals at {until} ≤ onset {at}"));
                    }
                }
                ScenarioEvent::Partition { a, b, at, heal } => {
                    resolve_pair_links(scn, a, b)?;
                    if heal <= at {
                        return Err(format!("partition heals at {heal} ≤ onset {at}"));
                    }
                }
                ScenarioEvent::DropFlowMods { .. } => {}
            }
        }
        Ok(())
    }

    /// Compile the schedule into world control events, origin at `t0`.
    /// Panics on unresolvable targets — run [`EventScript::validate`]
    /// when the script/topology pairing is not statically known.
    pub fn apply(&self, scn: &mut BuiltScenario, t0: SimTime) {
        for ev in &self.events {
            match *ev {
                ScenarioEvent::LinkDown { link, at } => {
                    let l = resolve_link(scn, link).unwrap();
                    scn.world
                        .schedule(t0 + at, move |w| w.set_link_up(l, false));
                }
                ScenarioEvent::LinkUp { link, at } => {
                    let l = resolve_link(scn, link).unwrap();
                    scn.world.schedule(t0 + at, move |w| w.set_link_up(l, true));
                }
                ScenarioEvent::LinkFlap {
                    link,
                    at,
                    period,
                    cycles,
                } => {
                    let l = resolve_link(scn, link).unwrap();
                    for c in 0..cycles as u64 {
                        let down_at = t0 + at + period * c;
                        scn.world
                            .schedule(down_at, move |w| w.set_link_up(l, false));
                        scn.world
                            .schedule(down_at + period / 2, move |w| w.set_link_up(l, true));
                    }
                }
                ScenarioEvent::NodeCrash { node, at } => {
                    let n = resolve_node(scn, node).unwrap();
                    scn.world.schedule(t0 + at, move |w| w.crash_node(n));
                }
                ScenarioEvent::SessionReset {
                    provider,
                    at,
                    outage,
                } => {
                    let i = resolve_provider(scn, provider).unwrap();
                    let l = scn.provider_switch_links[i];
                    scn.world
                        .schedule(t0 + at, move |w| w.set_link_up(l, false));
                    scn.world
                        .schedule(t0 + at + outage, move |w| w.set_link_up(l, true));
                }
                ScenarioEvent::WithdrawBurst {
                    provider,
                    at,
                    count,
                } => {
                    let i = resolve_provider(scn, provider).unwrap();
                    let node = scn.providers[i];
                    let updates = vec![withdraw_of(&scn.universe, count)];
                    schedule_injection(scn, node, t0 + at, updates);
                }
                ScenarioEvent::ChurnBurst {
                    provider,
                    at,
                    count,
                    cycles,
                    period,
                } => {
                    let i = resolve_provider(scn, provider).unwrap();
                    let node = scn.providers[i];
                    let withdraw = withdraw_of(&scn.universe, count);
                    let targets: std::collections::BTreeSet<Ipv4Prefix> =
                        withdraw.withdrawn.iter().copied().collect();
                    let reannounce: Vec<UpdateMsg> = scn.feeds[i]
                        .iter()
                        .filter_map(|u| {
                            let nlri: Vec<Ipv4Prefix> = u
                                .nlri
                                .iter()
                                .copied()
                                .filter(|p| targets.contains(p))
                                .collect();
                            (!nlri.is_empty()).then(|| UpdateMsg {
                                withdrawn: Vec::new(),
                                attrs: u.attrs.clone(),
                                nlri,
                            })
                        })
                        .collect();
                    for c in 0..cycles as u64 {
                        let w_at = t0 + at + period * c;
                        schedule_injection(scn, node, w_at, vec![withdraw.clone()]);
                        schedule_injection(scn, node, w_at + period / 2, reannounce.clone());
                    }
                }
                ScenarioEvent::CrashReplica { replica, at } => {
                    // Legacy builds have no replicas: the event is a
                    // no-op so one script drives both comparison modes.
                    if let Some(&n) = scn.controllers.get(replica) {
                        scn.world.schedule(t0 + at, move |w| w.crash_node(n));
                    }
                }
                ScenarioEvent::DelayReplica { replica, at, delay } => {
                    if let Some(&l) = scn.controller_links.get(replica) {
                        scn.world
                            .schedule(t0 + at, move |w| w.set_link_up(l, false));
                        scn.world
                            .schedule(t0 + at + delay, move |w| w.set_link_up(l, true));
                    }
                }
                ScenarioEvent::SetLinkFaults {
                    link,
                    at,
                    loss_ppm,
                    corrupt_ppm,
                    until,
                } => {
                    // Controller-link faults no-op in legacy builds,
                    // like the replica events, so one chaos script
                    // drives both comparison modes.
                    let l = match link {
                        LinkRef::ControllerSwitch(_) if scn.controllers.is_empty() => continue,
                        _ => resolve_link(scn, link).unwrap(),
                    };
                    // Heal back to the *apply-time* parameters, which
                    // include builder-level overrides.
                    let orig = scn.world.link_params(l);
                    scn.world.schedule(t0 + at, move |w| {
                        let mut p = w.link_params(l);
                        p.loss = loss_ppm as f64 / 1e6;
                        p.corrupt = corrupt_ppm as f64 / 1e6;
                        w.set_link_params(l, p);
                    });
                    scn.world
                        .schedule(t0 + until, move |w| w.set_link_params(l, orig));
                }
                ScenarioEvent::Partition { a, b, at, heal } => {
                    for l in resolve_pair_links(scn, a, b).unwrap() {
                        scn.world
                            .schedule(t0 + at, move |w| w.set_link_up(l, false));
                        scn.world
                            .schedule(t0 + heal, move |w| w.set_link_up(l, true));
                    }
                }
                ScenarioEvent::CrashController { replica, at } => {
                    if let Some(&n) = scn.controllers.get(replica) {
                        scn.world.schedule(t0 + at, move |w| w.crash_node(n));
                    }
                }
                ScenarioEvent::RestartController { replica, at } => {
                    // Needs both a replica slot and a restart factory;
                    // no-op otherwise (legacy, Fig. 4 delegation).
                    if let (Some(&n), Some(cfg)) = (
                        scn.controllers.get(replica),
                        scn.controller_cfgs.get(replica).cloned(),
                    ) {
                        scn.world.schedule(t0 + at, move |w| {
                            if !w.node_alive(n) {
                                w.restart_node(
                                    n,
                                    supercharger::Controller::new(cfg, sc_sim::PortId(0)),
                                );
                            }
                        });
                    }
                }
                ScenarioEvent::DropFlowMods { count, at } => {
                    let sw = scn.switch;
                    scn.world.schedule(t0 + at, move |w| {
                        w.node_mut::<sc_openflow::OfSwitch>(sw)
                            .set_drop_flowmods(count);
                    });
                }
            }
        }
    }
}

impl fmt::Display for EventScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "script {}", self.name)?;
        for ev in &self.events {
            writeln!(f, "{ev}")?;
        }
        Ok(())
    }
}

impl FromStr for EventScript {
    type Err = String;
    fn from_str(s: &str) -> Result<EventScript, String> {
        let mut name = None;
        let mut events = Vec::new();
        for line in s.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(n) = line.strip_prefix("script ") {
                name = Some(n.trim().to_string());
                continue;
            }
            events.push(line.parse()?);
        }
        Ok(EventScript {
            name: name.ok_or("missing `script <name>` header")?,
            events,
        })
    }
}

pub(crate) fn resolve_provider(scn: &BuiltScenario, sel: ProviderSel) -> Result<usize, String> {
    let m = scn.providers.len();
    let idx = match sel {
        ProviderSel::Primary => scn.primary,
        ProviderSel::Rank(r) => *scn
            .blueprint
            .rank_order()
            .get(r)
            .ok_or_else(|| format!("rank {r} out of range ({m} providers)"))?,
        ProviderSel::Index(i) => i,
    };
    if idx < m {
        Ok(idx)
    } else {
        Err(format!("provider {idx} out of range ({m} providers)"))
    }
}

pub(crate) fn resolve_link(scn: &BuiltScenario, link: LinkRef) -> Result<LinkId, String> {
    match link {
        LinkRef::ProviderSwitch(sel) => Ok(scn.provider_switch_links[resolve_provider(scn, sel)?]),
        LinkRef::ProviderPath(sel) => Ok(scn.provider_path_links[resolve_provider(scn, sel)?]),
        LinkRef::ForwarderUplink(j) => scn
            .forwarder_up_links
            .get(j)
            .copied()
            .ok_or_else(|| format!("forwarder {j} out of range")),
        LinkRef::RingCloser => scn
            .ring_closer_link
            .ok_or_else(|| "topology has no ring closer".to_string()),
        LinkRef::ControllerSwitch(c) => scn
            .controller_links
            .get(c)
            .copied()
            .ok_or_else(|| format!("controller {c} out of range")),
    }
}

/// Every wired link between two partitionable endpoints. Controller
/// endpoints a legacy build lacks resolve to the empty set (the
/// partition no-ops); a pair the topology never wires is an error.
pub(crate) fn resolve_pair_links(
    scn: &BuiltScenario,
    a: NodeRef,
    b: NodeRef,
) -> Result<Vec<LinkId>, String> {
    use NodeRef::{Controller, Forwarder, Provider, Switch};
    match (a, b) {
        (Switch, Provider(sel)) | (Provider(sel), Switch) => {
            Ok(vec![scn.provider_switch_links[resolve_provider(scn, sel)?]])
        }
        (Switch, Controller(c)) | (Controller(c), Switch) => {
            if !scn.controllers.is_empty() && c >= scn.controllers.len() {
                return Err(format!(
                    "controller {c} out of range ({} replicas)",
                    scn.controllers.len()
                ));
            }
            Ok(scn.controller_links.get(c).copied().into_iter().collect())
        }
        (Provider(sel), Forwarder(j)) | (Forwarder(j), Provider(sel)) => {
            let i = resolve_provider(scn, sel)?;
            if scn.blueprint.providers[i].entry == Some(j) {
                Ok(vec![scn.provider_path_links[i]])
            } else {
                Err(format!("provider {i} has no link to forwarder {j}"))
            }
        }
        (Forwarder(j), Forwarder(k)) => {
            let mut v = Vec::new();
            if scn.blueprint.forwarders.get(j).and_then(|f| f.next) == Some(k) {
                v.push(scn.forwarder_up_links[j]);
            }
            if scn.blueprint.forwarders.get(k).and_then(|f| f.next) == Some(j) {
                v.push(scn.forwarder_up_links[k]);
            }
            if let (Some(l), Some(rc)) = (scn.ring_closer_link, scn.blueprint.ring_closer) {
                if rc == (j, k) || rc == (k, j) {
                    v.push(l);
                }
            }
            if v.is_empty() {
                Err(format!("no wired link between forwarders {j} and {k}"))
            } else {
                Ok(v)
            }
        }
        _ => Err(format!("no partitionable link between {a} and {b}")),
    }
}

fn resolve_node(scn: &BuiltScenario, node: NodeRef) -> Result<NodeId, String> {
    match node {
        NodeRef::Provider(sel) => Ok(scn.providers[resolve_provider(scn, sel)?]),
        NodeRef::Forwarder(j) => scn
            .forwarders
            .get(j)
            .copied()
            .ok_or_else(|| format!("forwarder {j} out of range")),
        NodeRef::Controller(c) => scn
            .controllers
            .get(c)
            .copied()
            .ok_or_else(|| format!("controller {c} out of range")),
        NodeRef::Switch => Ok(scn.switch),
    }
}

/// Sebastiano Vigna's splitmix64 — the workspace's stock seeded
/// stateless mixer (also used for flow-mod retry jitter in sc-core).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn withdraw_of(universe: &[Ipv4Prefix], count: u32) -> UpdateMsg {
    UpdateMsg {
        withdrawn: universe.iter().take(count as usize).copied().collect(),
        attrs: None,
        nlri: Vec::new(),
    }
}

/// Schedule a runtime UPDATE injection on a provider router and wake
/// its sessions so the messages leave immediately (shared with the
/// runner's MRT replay path).
pub(crate) fn schedule_injection(
    scn: &mut BuiltScenario,
    node: NodeId,
    at: SimTime,
    updates: Vec<UpdateMsg>,
) {
    scn.world.schedule(at, move |w| {
        let tokens = w.node_mut::<LegacyRouter>(node).inject_updates(&updates);
        let now = w.now();
        for tok in tokens {
            w.wake_node(now, node, tok);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn scripts_roundtrip_through_text() {
        let scripts = [
            EventScript::primary_cut(),
            EventScript::primary_flap(ms(250), 3),
            EventScript::primary_crash(),
            EventScript::primary_session_reset(ms(150)),
            EventScript::withdraw_burst(100),
            EventScript::staggered_double(ms(200)),
            EventScript::replica_crash(1, ms(2)),
            EventScript::replica_delay(0, ms(2), ms(40)),
            EventScript::chaos(7),
            EventScript::chaos(0xDEAD_BEEF),
            EventScript::new(
                "havoc",
                vec![
                    ScenarioEvent::SetLinkFaults {
                        link: LinkRef::ControllerSwitch(1),
                        at: ms(2),
                        loss_ppm: 125_000,
                        corrupt_ppm: 7,
                        until: ms(90),
                    },
                    ScenarioEvent::Partition {
                        a: NodeRef::Switch,
                        b: NodeRef::Controller(0),
                        at: ms(4),
                        heal: ms(60),
                    },
                    ScenarioEvent::Partition {
                        a: NodeRef::Provider(ProviderSel::Primary),
                        b: NodeRef::Forwarder(2),
                        at: ms(5),
                        heal: ms(65),
                    },
                    ScenarioEvent::CrashController {
                        replica: 1,
                        at: ms(8),
                    },
                    ScenarioEvent::RestartController {
                        replica: 1,
                        at: ms(80),
                    },
                    ScenarioEvent::DropFlowMods {
                        count: 3,
                        at: ms(1),
                    },
                ],
            ),
            EventScript::new(
                "mixed",
                vec![
                    ScenarioEvent::LinkDown {
                        link: LinkRef::ForwarderUplink(2),
                        at: ms(5),
                    },
                    ScenarioEvent::LinkUp {
                        link: LinkRef::RingCloser,
                        at: ms(7),
                    },
                    ScenarioEvent::ChurnBurst {
                        provider: ProviderSel::Rank(1),
                        at: ms(1),
                        count: 50,
                        cycles: 2,
                        period: ms(300),
                    },
                    // Sub-microsecond offsets must survive the text
                    // form too (they render as ns).
                    ScenarioEvent::LinkDown {
                        link: LinkRef::ProviderPath(ProviderSel::Index(0)),
                        at: SimDuration::from_nanos(1_500),
                    },
                ],
            ),
        ];
        for script in scripts {
            let text = script.to_string();
            let parsed: EventScript = text.parse().unwrap_or_else(|e| {
                panic!("failed to reparse {text:?}: {e}");
            });
            assert_eq!(parsed, script, "roundtrip of {text:?}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!("script x\nlink_down nowhere @0us"
            .parse::<EventScript>()
            .is_err());
        assert!("link_down provider_switch:primary @0us"
            .parse::<EventScript>()
            .is_err());
        assert!(
            "script x\nlink_flap provider_switch:primary @0us period=1xs cycles=2"
                .parse::<EventScript>()
                .is_err()
        );
        // ppm values need the suffix and must stay within one million.
        assert!(
            "script x\nset_link_faults controller_switch:0 @0us loss=5 corrupt=0ppm until=1ms"
                .parse::<EventScript>()
                .is_err()
        );
        assert!(
            "script x\nset_link_faults controller_switch:0 @0us loss=1000001ppm corrupt=0ppm until=1ms"
                .parse::<EventScript>()
                .is_err()
        );
    }

    #[test]
    fn chaos_is_a_pure_function_of_seed() {
        assert_eq!(EventScript::chaos(42), EventScript::chaos(42));
        assert_ne!(EventScript::chaos(42), EventScript::chaos(43));
        // The measured convergence event (primary cut at the origin) is
        // always present regardless of seed.
        for seed in 0..16u64 {
            let s = EventScript::chaos(seed);
            assert!(s.events.iter().any(|e| matches!(
                e,
                ScenarioEvent::LinkDown {
                    link: LinkRef::ProviderSwitch(ProviderSel::Primary),
                    at,
                } if *at == SimDuration::ZERO
            )));
            // And the whole script survives the text round-trip.
            let text = s.to_string();
            assert_eq!(text.parse::<EventScript>().unwrap(), s);
        }
    }

    #[test]
    fn epochs_one_per_failure_onset() {
        assert_eq!(EventScript::primary_cut().epochs(), vec![SimDuration::ZERO]);
        assert_eq!(
            EventScript::primary_flap(ms(200), 3).epochs(),
            vec![SimDuration::ZERO, ms(200), ms(400)],
            "one epoch per flap cycle"
        );
        assert_eq!(
            EventScript::primary_session_reset(ms(150)).epochs(),
            vec![SimDuration::ZERO],
            "a reset is one down->up cycle"
        );
        let churn = EventScript::new(
            "c",
            vec![ScenarioEvent::ChurnBurst {
                provider: ProviderSel::Primary,
                at: ms(10),
                count: 5,
                cycles: 2,
                period: ms(100),
            }],
        );
        assert_eq!(churn.epochs(), vec![ms(10), ms(110)]);
        // Restorations are not onsets; a script with none measures a
        // single window at the origin.
        let up_only = EventScript::new(
            "up",
            vec![ScenarioEvent::LinkUp {
                link: LinkRef::RingCloser,
                at: ms(5),
            }],
        );
        assert_eq!(up_only.epochs(), vec![SimDuration::ZERO]);
        // Concurrent onsets from different events merge and dedupe.
        let double = EventScript::new(
            "d",
            vec![
                ScenarioEvent::LinkDown {
                    link: LinkRef::ProviderSwitch(ProviderSel::Primary),
                    at: SimDuration::ZERO,
                },
                ScenarioEvent::NodeCrash {
                    node: NodeRef::Provider(ProviderSel::Rank(1)),
                    at: SimDuration::ZERO,
                },
                ScenarioEvent::WithdrawBurst {
                    provider: ProviderSel::Primary,
                    at: ms(50),
                    count: 3,
                },
            ],
        );
        assert_eq!(double.epochs(), vec![SimDuration::ZERO, ms(50)]);
        // Replica events perturb a failover already in progress; they
        // are not onsets, so the probe scripts measure one window (the
        // primary cut at the origin).
        assert_eq!(
            EventScript::replica_crash(1, ms(2)).epochs(),
            vec![SimDuration::ZERO]
        );
        assert_eq!(
            EventScript::replica_delay(0, ms(2), ms(40)).epochs(),
            vec![SimDuration::ZERO]
        );
        // Chaos onsets: link faults, partitions and controller crashes
        // are degradations (epochs); restarts and flow-mod drops are
        // not.
        let havoc = EventScript::new(
            "h",
            vec![
                ScenarioEvent::SetLinkFaults {
                    link: LinkRef::ControllerSwitch(0),
                    at: ms(3),
                    loss_ppm: 1,
                    corrupt_ppm: 0,
                    until: ms(9),
                },
                ScenarioEvent::Partition {
                    a: NodeRef::Switch,
                    b: NodeRef::Controller(0),
                    at: ms(3),
                    heal: ms(7),
                },
                ScenarioEvent::CrashController {
                    replica: 0,
                    at: ms(5),
                },
                ScenarioEvent::RestartController {
                    replica: 0,
                    at: ms(20),
                },
                ScenarioEvent::DropFlowMods {
                    count: 2,
                    at: ms(1),
                },
            ],
        );
        assert_eq!(havoc.epochs(), vec![ms(3), ms(5)], "merged + deduped");
        assert_eq!(havoc.end(), ms(20), "restart is the last touch");
    }

    #[test]
    fn script_end_covers_flaps_and_churn() {
        assert_eq!(EventScript::primary_cut().end(), SimDuration::ZERO);
        assert_eq!(
            EventScript::primary_flap(ms(200), 3).end(),
            ms(200) * 2 + ms(100)
        );
        let churn = EventScript::new(
            "c",
            vec![ScenarioEvent::ChurnBurst {
                provider: ProviderSel::Primary,
                at: ms(10),
                count: 5,
                cycles: 2,
                period: ms(100),
            }],
        );
        assert_eq!(churn.end(), ms(10) + ms(100) + ms(50));
    }
}
