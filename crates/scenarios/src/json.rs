//! Minimal JSON emission (the workspace deliberately carries no
//! serialization dependency; this mirrors `sc_lab::stats::Csv`).
//!
//! Only what the suite report needs: objects, arrays, strings, integers
//! and floats, rendered deterministically (insertion order, fixed float
//! formatting) so that identical suites produce byte-identical files.

use std::fmt;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Str(String),
    /// Integers render without a decimal point (u64 covers every
    /// counter and nanosecond quantity the reports emit).
    Int(u64),
    Float(f64),
    Bool(bool),
    Array(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Append a field to an object (panics on non-objects: report
    /// construction is static code, not data-driven).
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Object(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Str(s) => write_escaped(s, out),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                // Shortest-roundtrip formatting is deterministic; a
                // whole float prints without ".0", which is still valid
                // JSON. Non-finite values (never expected) become null.
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact serialization (no whitespace); `to_string()` comes with it.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically() {
        let mut obj = Json::object();
        obj.push("name", Json::str("chain"))
            .push("n", Json::Int(3))
            .push("ok", Json::Bool(true))
            .push("xs", Json::Array(vec![Json::Int(1), Json::Int(2)]));
        assert_eq!(
            obj.to_string(),
            r#"{"name":"chain","n":3,"ok":true,"xs":[1,2]}"#
        );
        assert_eq!(obj.to_string(), obj.to_string());
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
    }
}
