//! **sc-scenarios** — the declarative scenario engine.
//!
//! The paper evaluates supercharged convergence on exactly one hardware
//! topology (Fig. 4). This crate turns that single reproduction into a
//! general convergence-evaluation platform, in three layers:
//!
//! * [`topo`] — parametric **topology generators**: the Fig. 4 lab
//!   (delegating to [`sc_lab::topology::ConvergenceLab`]), linear
//!   chains, rings, k-ary fat-tree/Clos pods, IXP-style hub fan-outs
//!   (the paper's §5 "boosting an IXP" case), and seeded random
//!   graphs. Every generator elaborates to a [`topo::Blueprint`] that
//!   [`builder`] wires into a deterministic [`sc_sim::World`] with real
//!   BGP provider routers, a static-route delivery fabric, and — in
//!   supercharged mode — the controller(s).
//! * [`events`] — typed, text-serializable **event scripts** (link cut,
//!   link flap, node crash, session reset, withdraw/churn bursts,
//!   staggered multi-failure) compiled down to `World` failure
//!   injections; this replaces the single "cut R2 at `t_fail`" baked
//!   into `run_convergence_trial`.
//! * [`runner`] — the **suite runner**: a matrix of (topology × script
//!   × mode ∈ {legacy, supercharged}) trials, per-flow gap measurement
//!   through the `sc-traffic` sink, box statistics per scenario, and
//!   CSV + JSON reports.
//!
//! Feeds come from [`builder::FeedSource`]: deterministic synthetic
//! tables (the default), or `FeedSource::MrtReplay` — an RFC 6396 MRT
//! RIB snapshot seeding the provider tables plus a recorded `BGP4MP`
//! update trace replayed with its recorded inter-arrival timing
//! (time-warpable via `sc_mrt::TimeScale`), each replay burst measured
//! in its own convergence window.
//!
//! ## Quickstart
//!
//! ```no_run
//! use sc_scenarios::{run_suite, SuiteConfig};
//!
//! let report = run_suite(&SuiteConfig::default_matrix());
//! println!("{}", report.to_csv());
//! for (topo, script, x) in report.speedups() {
//!     println!("{topo}/{script}: supercharging is {x:.0}x faster");
//! }
//! ```

pub mod builder;
pub mod events;
pub mod json;
pub mod phases;
pub mod runner;
pub mod topo;

pub use builder::{build_scenario, BuiltScenario, FeedSource, MrtReplayFeed, ScenarioConfig};
pub use events::{EventScript, LinkRef, NodeRef, ProviderSel, ScenarioEvent};
pub use phases::{reconstruct_cycle, CyclePhases};
pub use runner::{
    expected_budget, mode_label, parse_completed_cells, run_scenario, run_scenario_traced,
    run_suite, run_suite_resume, run_suite_with, CompletedCell, CycleOutcome, ScenarioOutcome,
    SuiteConfig, SuiteReport, TraceArtifacts, TrialError, TrialResult,
};
pub use sc_invariant::{InvariantReport, ViolationClass, WindowViolations};
pub use sc_lab::Mode;
pub use topo::{Blueprint, TopologySpec};
