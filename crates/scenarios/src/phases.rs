//! Causal convergence-timeline reconstruction from sc-trace records.
//!
//! A convergence cycle — failure onset to the last flow's recovery — is
//! opaque in the aggregate `cycle_*` columns: the same 80 ms can be 75 ms
//! of BFD detection plus 5 ms of FIB work, or the reverse, and the fix
//! differs completely. This module stitches the kernel's trace records
//! into a per-cycle phase breakdown:
//!
//! * **detect** — failure onset → the first `detect`-category event
//!   (`bfd.down`, `session.down`, `liveness.expired`);
//! * **notify** — detection → the first `program`-category event (the
//!   controller's reaction delay + plan computation supercharged; RIB
//!   withdrawal → first FIB burst legacy);
//! * **program** — first → last `program` event before restoration
//!   (flow-mod batches and acks supercharged; FIB walker batches and
//!   flow-cache invalidations legacy);
//! * **fib** — last programming action → measured restoration (the tail
//!   the data plane needed after the final table write).
//!
//! Anchors are clamped into `[t_fail, t_restored]`, so the four phases
//! sum *exactly* to the measured per-cycle convergence time: the
//! breakdown partitions the measurement, it never re-estimates it.
//! Reconstruction is pure post-processing over the flight-recorder ring
//! — it can never perturb the simulation it explains.

use sc_net::{SimDuration, SimTime};
use sc_sim::TraceEvent;

/// One cycle's convergence time split into causal phases. All four
/// durations sum to the measured per-cycle convergence (worst per-flow
/// gap) by construction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CyclePhases {
    /// Failure onset → first detection event.
    pub detect: SimDuration,
    /// Detection → first programming action.
    pub notify: SimDuration,
    /// First → last programming action before restoration.
    pub program: SimDuration,
    /// Last programming action → measured restoration.
    pub fib: SimDuration,
}

impl CyclePhases {
    /// The phases re-assembled — equals the measured convergence time.
    pub fn total(&self) -> SimDuration {
        self.detect + self.notify + self.program + self.fib
    }
}

/// Reconstruct the phase breakdown of one measurement cycle from the
/// merged trace. `records` must be in trace order (the ring's native
/// order); `conv` is the cycle's measured convergence time (worst
/// per-flow gap). Returns `None` when the cycle never converged
/// (`conv == 0` means no gap was measured) or when no detection event
/// landed inside the window — a blank column is honest, a zero is not.
pub fn reconstruct_cycle(
    records: &[TraceEvent],
    t_fail: SimTime,
    t_close: SimTime,
    conv: SimDuration,
) -> Option<CyclePhases> {
    if conv == SimDuration::ZERO {
        return None;
    }
    let t_restored = t_fail + conv;
    let in_cycle = |e: &TraceEvent| e.time >= t_fail && e.time < t_close;
    let t_detect = records
        .iter()
        .find(|e| in_cycle(e) && e.cat == "detect")
        .map(|e| e.time)?
        .min(t_restored);
    // First and last programming actions attributable to this failure:
    // at or after detection, at or before the measured restoration.
    let mut t_p0: Option<SimTime> = None;
    let mut t_p1: Option<SimTime> = None;
    for e in records.iter().filter(|e| in_cycle(e)) {
        if e.cat != "program" || e.time < t_detect {
            continue;
        }
        if t_p0.is_none() {
            t_p0 = Some(e.time.min(t_restored));
        }
        if e.time <= t_restored {
            t_p1 = Some(e.time);
        }
    }
    // No programming observed (e.g. the ring evicted it, or recovery
    // needed no table change): collapse notify/program to zero and let
    // `fib` carry the remainder — the sum must still be exact.
    let t_p0 = t_p0.unwrap_or(t_detect).max(t_detect);
    let t_p1 = t_p1.unwrap_or(t_p0).max(t_p0);
    Some(CyclePhases {
        detect: t_detect - t_fail,
        notify: t_p0 - t_detect,
        program: t_p1 - t_p0,
        fib: t_restored - t_p1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sim::{NodeId, TracePhase};

    fn ev(t_ns: u64, cat: &'static str) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t_ns),
            cause: 0,
            sub: 0,
            node: NodeId(0),
            phase: TracePhase::Instant,
            cat,
            name: cat,
            id: 0,
            v: 0,
            detail: String::new(),
        }
    }

    const US: u64 = 1_000;

    #[test]
    fn phases_partition_the_measured_cycle() {
        // fail at 100us, detect at 190us, program at 195us..240us,
        // restored at 250us.
        let records = vec![
            ev(50 * US, "program"), // pre-failure noise: ignored
            ev(190 * US, "detect"),
            ev(195 * US, "program"),
            ev(240 * US, "program"),
            ev(400 * US, "program"), // after restoration: ignored for p1
        ];
        let p = reconstruct_cycle(
            &records,
            SimTime::from_nanos(100 * US),
            SimTime::from_nanos(500 * US),
            SimDuration::from_micros(150),
        )
        .unwrap();
        assert_eq!(p.detect, SimDuration::from_micros(90));
        assert_eq!(p.notify, SimDuration::from_micros(5));
        assert_eq!(p.program, SimDuration::from_micros(45));
        assert_eq!(p.fib, SimDuration::from_micros(10));
        assert_eq!(p.total(), SimDuration::from_micros(150));
    }

    #[test]
    fn no_detection_or_no_convergence_is_blank() {
        let records = vec![ev(190 * US, "program")];
        assert!(reconstruct_cycle(
            &records,
            SimTime::from_nanos(100 * US),
            SimTime::from_nanos(500 * US),
            SimDuration::from_micros(150),
        )
        .is_none());
        assert!(reconstruct_cycle(
            &[ev(190 * US, "detect")],
            SimTime::from_nanos(100 * US),
            SimTime::from_nanos(500 * US),
            SimDuration::ZERO,
        )
        .is_none());
    }

    #[test]
    fn missing_program_events_fold_into_fib_tail() {
        let records = vec![ev(120 * US, "detect")];
        let p = reconstruct_cycle(
            &records,
            SimTime::from_nanos(100 * US),
            SimTime::from_nanos(500 * US),
            SimDuration::from_micros(100),
        )
        .unwrap();
        assert_eq!(p.detect, SimDuration::from_micros(20));
        assert_eq!(p.notify, SimDuration::ZERO);
        assert_eq!(p.program, SimDuration::ZERO);
        assert_eq!(p.fib, SimDuration::from_micros(80));
        assert_eq!(p.total(), SimDuration::from_micros(100));
    }

    #[test]
    fn late_detection_clamps_to_restoration() {
        // Detection recorded after the measured restoration (a sibling
        // session noticing late): the breakdown still partitions conv.
        let records = vec![ev(300 * US, "detect")];
        let p = reconstruct_cycle(
            &records,
            SimTime::from_nanos(100 * US),
            SimTime::from_nanos(500 * US),
            SimDuration::from_micros(150),
        )
        .unwrap();
        assert_eq!(p.total(), SimDuration::from_micros(150));
        assert_eq!(p.detect, SimDuration::from_micros(150));
        assert_eq!(p.fib, SimDuration::ZERO);
    }
}
