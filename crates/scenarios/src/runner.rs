//! The suite runner: execute a matrix of
//! (topology × event script × mode) trials and report per-scenario
//! convergence distributions.
//!
//! Each trial reuses the shared phase machinery from
//! [`sc_lab::harness`]: converge the control plane, stream probes, open
//! the measurement window, fire the script, harvest per-flow maximum
//! gaps through the `sc-traffic` sink. Trials run on parallel threads
//! (each owns its world); results are deterministic because every
//! world is a pure function of its seed and the report rows are placed
//! by matrix index, not completion order.

use crate::builder::{build_scenario, ScenarioConfig};
use crate::events::EventScript;
use crate::json::Json;
use crate::topo::TopologySpec;
use sc_lab::harness::{arm_traffic, plan_measurement, run_out_and_harvest};
use sc_lab::{BoxStats, Csv, Mode};
use sc_net::{SimDuration, SimTime};

/// Report label for a mode: the paper's "stock" router is the legacy
/// baseline every scenario compares against.
pub fn mode_label(mode: Mode) -> &'static str {
    match mode {
        Mode::Stock => "legacy",
        Mode::Supercharged => "supercharged",
    }
}

/// The expected convergence budget for one scenario (sizes measurement
/// windows and probe rates). Same source of truth as
/// `sc_lab::expected_convergence` — the Fig. 4 delegation test pins
/// them to identical results.
pub fn expected_budget(mode: Mode, cfg: &ScenarioConfig) -> SimDuration {
    sc_lab::harness::convergence_budget(mode, &cfg.cal, cfg.prefixes, cfg.control_loss)
}

/// Auto-scaled probe rate: keep ≥1000 probe intervals across the
/// expected convergence (quantization error ≤0.1%) under a global
/// probe-send budget — `sc_lab::harness::probe_rate`.
pub fn suggested_rate(cfg: &ScenarioConfig, expected: SimDuration) -> u64 {
    sc_lab::harness::probe_rate(cfg.rate_pps, expected, cfg.flows)
}

/// The outcome of one (topology, script, mode) trial.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    pub topology: String,
    pub script: String,
    pub mode: Mode,
    pub prefixes: u32,
    pub seed: u64,
    pub rate_pps: u64,
    /// Per-flow convergence (maximum inter-packet gap across the
    /// script), one entry per flow.
    pub per_flow: Vec<SimDuration>,
    pub unrecovered: usize,
    /// When the script origin fired.
    pub fail_at: SimTime,
    /// First primary-down detection after the origin, if observed.
    pub detected_at: Option<SimTime>,
    /// Virtual time consumed by setup.
    pub setup_time: SimTime,
    /// Flow rewrites issued by the controller (supercharged only).
    pub flow_rewrites: Option<usize>,
}

impl ScenarioOutcome {
    pub fn stats(&self) -> BoxStats {
        BoxStats::of(&self.per_flow)
    }
}

/// Run one scenario trial end to end.
pub fn run_scenario(
    topo: &TopologySpec,
    script: &EventScript,
    mode: Mode,
    cfg: &ScenarioConfig,
) -> ScenarioOutcome {
    let mut scn = build_scenario(topo, mode, cfg);
    script.validate(&scn).unwrap_or_else(|e| {
        panic!(
            "script {:?} does not fit {}: {e}",
            script.name, scn.blueprint.label
        )
    });

    // Phase 1: converge the control plane.
    let setup_time = scn.run_until_converged();

    // Phases 2-3: probes + script, via the shared harness.
    let budget = expected_budget(mode, cfg);
    let horizon = script.end() + budget + budget / 2 + SimDuration::from_secs(1);
    let rate = suggested_rate(cfg, budget + script.end());
    let plan = plan_measurement(scn.world.now(), rate, horizon);
    arm_traffic(&mut scn.world, scn.source, scn.sink, &plan);
    script.apply(&mut scn, plan.t_fail);

    // Phase 4: run out the window and harvest.
    let harvest = run_out_and_harvest(&mut scn.world, scn.sink, plan.t_end, cfg.flows);

    ScenarioOutcome {
        topology: scn.blueprint.label.clone(),
        script: script.name.clone(),
        mode,
        prefixes: cfg.prefixes,
        seed: cfg.seed,
        rate_pps: rate,
        per_flow: harvest.per_flow,
        unrecovered: harvest.unrecovered,
        fail_at: plan.t_fail,
        detected_at: scn.detected_at(plan.t_fail),
        setup_time,
        flow_rewrites: scn.flow_rewrites(),
    }
}

/// A suite: the full matrix of topologies × scripts × modes.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    pub topologies: Vec<TopologySpec>,
    pub scripts: Vec<EventScript>,
    pub modes: Vec<Mode>,
    pub base: ScenarioConfig,
}

impl SuiteConfig {
    /// The default evaluation matrix: three topology families beyond
    /// the paper's lab, the cable-cut and cable-flap scripts, both
    /// modes.
    pub fn default_matrix() -> SuiteConfig {
        SuiteConfig {
            topologies: vec![
                TopologySpec::Fig4Lab,
                TopologySpec::Chain {
                    providers: 2,
                    hops: 2,
                },
                TopologySpec::IxpHub { peers: 4 },
                TopologySpec::Ring {
                    providers: 2,
                    ring: 4,
                },
            ],
            scripts: vec![
                EventScript::primary_cut(),
                EventScript::primary_flap(SimDuration::from_millis(250), 3),
            ],
            modes: vec![Mode::Stock, Mode::Supercharged],
            base: ScenarioConfig::default(),
        }
    }
}

/// All trial outcomes, in matrix order (topology-major, then script,
/// then mode).
#[derive(Clone, Debug)]
pub struct SuiteReport {
    pub rows: Vec<ScenarioOutcome>,
}

/// Run the full matrix. Trials run on parallel threads; the report is
/// ordered by matrix position and fully determined by the suite config.
pub fn run_suite(suite: &SuiteConfig) -> SuiteReport {
    let mut jobs = Vec::new();
    for topo in &suite.topologies {
        for script in &suite.scripts {
            for &mode in &suite.modes {
                jobs.push((topo.clone(), script.clone(), mode));
            }
        }
    }
    // A bounded worker pool: each trial owns a full simulation world,
    // so running the whole matrix at once would hold every RIB/feed in
    // memory simultaneously. Workers pull the next job index from a
    // shared cursor; rows land in their matrix slot, so the report is
    // identical regardless of scheduling.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let slots: Vec<std::sync::Mutex<Option<ScenarioOutcome>>> =
        jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (jobs, slots, cursor) = (&jobs, &slots, &cursor);
            let base = suite.base.clone();
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some((topo, script, mode)) = jobs.get(i) else {
                    return;
                };
                let outcome = run_scenario(topo, script, *mode, &base);
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });
    SuiteReport {
        rows: slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("trial thread panicked"))
            .collect(),
    }
}

impl SuiteReport {
    /// Per-scenario box statistics as CSV (durations in microseconds).
    pub fn to_csv(&self) -> String {
        let mut csv = Csv::new(&[
            "topology",
            "script",
            "mode",
            "prefixes",
            "flows",
            "rate_pps",
            "median_us",
            "p95_us",
            "max_us",
            "mean_us",
            "unrecovered",
            "detection_us",
            "flow_rewrites",
        ]);
        for row in &self.rows {
            let s = row.stats();
            let us = |d: SimDuration| (d.as_nanos() / 1_000).to_string();
            csv.row(&[
                row.topology.clone(),
                row.script.clone(),
                mode_label(row.mode).to_string(),
                row.prefixes.to_string(),
                row.per_flow.len().to_string(),
                row.rate_pps.to_string(),
                us(s.median),
                us(s.p95),
                us(s.max),
                us(s.mean),
                row.unrecovered.to_string(),
                row.detected_at
                    .map(|t| ((t - row.fail_at).as_nanos() / 1_000).to_string())
                    .unwrap_or_default(),
                row.flow_rewrites.map(|n| n.to_string()).unwrap_or_default(),
            ]);
        }
        csv.finish()
    }

    /// The machine-readable summary (all durations in nanoseconds;
    /// byte-identical for identical suite configs).
    pub fn to_json(&self) -> String {
        let mut root = Json::object();
        let mut rows = Vec::new();
        for row in &self.rows {
            let s = row.stats();
            let ns = |d: SimDuration| Json::Int(d.as_nanos());
            let mut obj = Json::object();
            obj.push("topology", Json::str(&row.topology))
                .push("script", Json::str(&row.script))
                .push("mode", Json::str(mode_label(row.mode)))
                .push("prefixes", Json::Int(row.prefixes as u64))
                .push("seed", Json::Int(row.seed))
                .push("rate_pps", Json::Int(row.rate_pps))
                .push("unrecovered", Json::Int(row.unrecovered as u64))
                .push("setup_time_ns", Json::Int(row.setup_time.as_nanos()))
                .push(
                    "detection_ns",
                    match row.detected_at {
                        Some(t) => Json::Int((t - row.fail_at).as_nanos()),
                        None => Json::str("none"),
                    },
                )
                .push(
                    "flow_rewrites",
                    match row.flow_rewrites {
                        Some(n) => Json::Int(n as u64),
                        None => Json::str("n/a"),
                    },
                )
                .push("stats_ns", {
                    let mut st = Json::object();
                    st.push("n", Json::Int(s.n as u64))
                        .push("min", ns(s.min))
                        .push("p5", ns(s.p5))
                        .push("q1", ns(s.q1))
                        .push("median", ns(s.median))
                        .push("q3", ns(s.q3))
                        .push("p95", ns(s.p95))
                        .push("max", ns(s.max))
                        .push("mean", ns(s.mean));
                    st
                })
                .push(
                    "per_flow_ns",
                    Json::Array(
                        row.per_flow
                            .iter()
                            .map(|d| Json::Int(d.as_nanos()))
                            .collect(),
                    ),
                );
            rows.push(obj);
        }
        root.push("rows", Json::Array(rows));
        root.push(
            "speedups",
            Json::Array(
                self.speedups()
                    .into_iter()
                    .map(|(topo, script, x)| {
                        let mut o = Json::object();
                        o.push("topology", Json::str(topo))
                            .push("script", Json::str(script))
                            .push("median_speedup_x1000", Json::Int((x * 1000.0) as u64));
                        o
                    })
                    .collect(),
            ),
        );
        root.to_string()
    }

    /// Median legacy/supercharged speedup per (topology, script) pair
    /// present in both modes.
    pub fn speedups(&self) -> Vec<(String, String, f64)> {
        let mut out = Vec::new();
        for row in &self.rows {
            if row.mode != Mode::Supercharged {
                continue;
            }
            let legacy = self.rows.iter().find(|r| {
                r.mode == Mode::Stock && r.topology == row.topology && r.script == row.script
            });
            if let Some(l) = legacy {
                let sup = row.stats().median.as_nanos().max(1) as f64;
                let leg = l.stats().median.as_nanos() as f64;
                out.push((row.topology.clone(), row.script.clone(), leg / sup));
            }
        }
        out
    }
}
