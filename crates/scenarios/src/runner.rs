//! The suite runner: execute a matrix of
//! (topology × event script × mode) trials and report per-scenario
//! convergence distributions.
//!
//! Each trial reuses the shared phase machinery from
//! [`sc_lab::harness`]: converge the control plane, stream probes, open
//! the measurement window, fire the script, harvest per-flow maximum
//! gaps through the `sc-traffic` sink. Trials run on parallel threads
//! (each owns its world); results are deterministic because every
//! world is a pure function of its seed and the report rows are placed
//! by matrix index, not completion order.

use crate::builder::{build_scenario, BuiltScenario, FeedSource, ScenarioConfig};
use crate::events::{resolve_provider, schedule_injection, EventScript, ScenarioEvent};
use crate::json::Json;
use crate::phases::{reconstruct_cycle, CyclePhases};
use crate::topo::TopologySpec;
use sc_invariant::{
    sample_flags, InvariantRecorder, InvariantReport, NetModel, ProbeSpec, TransitPolicy,
    TransitRule, ViolationClass,
};
use sc_lab::harness::{
    arm_traffic, merge_epochs, plan_cycle_measurement, run_cycles_and_harvest,
    schedule_window_samples,
};
use sc_lab::topology::{IP_SOURCE, MAC_R1, MAC_SOURCE};
use sc_lab::{BoxStats, Csv, Mode};
use sc_mrt::ReplaySchedule;
use sc_net::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Report label for a mode: the paper's "stock" router is the legacy
/// baseline every scenario compares against.
pub fn mode_label(mode: Mode) -> &'static str {
    match mode {
        Mode::Stock => "legacy",
        Mode::Supercharged => "supercharged",
    }
}

/// The expected convergence budget for one scenario (sizes measurement
/// windows and probe rates). Same source of truth as
/// `sc_lab::expected_convergence` — the Fig. 4 delegation test pins
/// them to identical results.
pub fn expected_budget(mode: Mode, cfg: &ScenarioConfig) -> SimDuration {
    sc_lab::harness::convergence_budget(mode, &cfg.cal, cfg.prefixes, cfg.control_loss)
}

/// Auto-scaled probe rate: keep ≥1000 probe intervals across the
/// expected convergence (quantization error ≤0.1%) under a global
/// probe-send budget — `sc_lab::harness::probe_rate`.
pub fn suggested_rate(cfg: &ScenarioConfig, expected: SimDuration) -> u64 {
    sc_lab::harness::probe_rate(cfg.rate_pps, expected, cfg.flows)
}

/// One scripted failure epoch's measurements: the per-flow maximum gap
/// *within that cycle's window* (cycle `i` closes where cycle `i+1`
/// opens), so every down→up→re-converge cycle of a flap script is a
/// convergence event of its own.
#[derive(Clone, Debug)]
pub struct CycleOutcome {
    /// When this cycle's failure fired.
    pub fail_at: SimTime,
    /// Per-flow maximum inter-packet gap within the cycle window.
    pub per_flow: Vec<SimDuration>,
    /// Flows whose gap never closed within the cycle window.
    pub unrecovered: usize,
    /// Time R1 spent in router-driven degraded mode (every controller
    /// session down) inside this cycle's window. Zero in legacy mode.
    pub degraded: SimDuration,
    /// Causal phase breakdown reconstructed from the trace
    /// ([`crate::phases`]); `None` unless [`ScenarioConfig::trace`] was
    /// on and the cycle's anchors were observed. When present, the four
    /// phases sum exactly to this cycle's measured worst per-flow gap.
    pub phases: Option<CyclePhases>,
}

impl CycleOutcome {
    pub fn stats(&self) -> BoxStats {
        BoxStats::of(&self.per_flow)
    }
}

/// The outcome of one (topology, script, mode) trial.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    pub topology: String,
    pub script: String,
    pub mode: Mode,
    pub prefixes: u32,
    pub seed: u64,
    pub rate_pps: u64,
    /// Per-flow convergence pooled over the whole script: the
    /// element-wise maximum across cycle windows, one entry per flow.
    pub per_flow: Vec<SimDuration>,
    /// Flows still unrecovered in the *final* cycle (end-state health).
    pub unrecovered: usize,
    /// When the script origin fired.
    pub fail_at: SimTime,
    /// First primary-down detection after the origin, if observed.
    pub detected_at: Option<SimTime>,
    /// Virtual time consumed by setup.
    pub setup_time: SimTime,
    /// Flow rewrites issued by the controller (supercharged only).
    pub flow_rewrites: Option<usize>,
    /// Flow-mod batches re-sent after a missed barrier ack, summed over
    /// replicas (supercharged only).
    pub flowmod_retries: Option<u64>,
    /// One entry per scripted failure epoch, in onset order.
    pub cycles: Vec<CycleOutcome>,
    /// Kernel events the trial processed (deterministic: a pure
    /// function of the suite config).
    pub events_processed: u64,
    /// Wall-clock events/second the kernel sustained — the perf
    /// trajectory metric. Machine- and run-dependent; excluded from the
    /// `*_stable` report variants.
    pub events_per_sec: u64,
    /// Per-window violation durations from the convergence-invariant
    /// engine; `None` unless [`ScenarioConfig::invariants`] is on.
    pub invariants: Option<InvariantReport>,
}

impl ScenarioOutcome {
    pub fn stats(&self) -> BoxStats {
        BoxStats::of(&self.per_flow)
    }
}

/// The exported observability artifacts of one traced trial: the
/// flight-recorder ring in both serializations plus the merged metrics
/// registry. Every field is byte-reproducible across reruns, schedulers
/// and shard counts (the determinism contract).
#[derive(Clone, Debug)]
pub struct TraceArtifacts {
    /// One JSON object per trace record (first line is the meta header).
    pub jsonl: String,
    /// Chrome `trace_event` JSON — open in Perfetto / `chrome://tracing`.
    pub chrome: String,
    /// The counters/histograms registry (kernel + per-node folds).
    pub metrics_json: String,
}

/// Run one scenario trial end to end.
pub fn run_scenario(
    topo: &TopologySpec,
    script: &EventScript,
    mode: Mode,
    cfg: &ScenarioConfig,
) -> ScenarioOutcome {
    run_scenario_traced(topo, script, mode, cfg).0
}

/// [`run_scenario`], also returning the trace artifacts when
/// [`ScenarioConfig::trace`] is on (`None` otherwise). The outcome is
/// identical either way — export happens after the world stops.
pub fn run_scenario_traced(
    topo: &TopologySpec,
    script: &EventScript,
    mode: Mode,
    cfg: &ScenarioConfig,
) -> (ScenarioOutcome, Option<TraceArtifacts>) {
    let mut scn = build_scenario(topo, mode, cfg);
    script.validate(&scn).unwrap_or_else(|e| {
        panic!(
            "script {:?} does not fit {}: {e}",
            script.name, scn.blueprint.label
        )
    });

    // The timed MRT replay riding this trial, if the feed carries one.
    let replay = match &cfg.feed {
        FeedSource::MrtReplay(r) if !r.updates.is_empty() => {
            let sched = ReplaySchedule::compile(&r.updates, r.time_scale)
                .unwrap_or_else(|e| panic!("MRT update trace: {e}"));
            (!sched.events.is_empty()).then_some((sched, r.epoch_quiet))
        }
        _ => None,
    };

    // Phase 1: converge the control plane.
    let setup_time = scn.run_until_converged();

    // Phases 2-3: probes + script (+ replay), via the shared harness.
    // Every failure onset — a scripted epoch or a replayed burst —
    // gets its own measurement window.
    let cfg = &scn.cfg.clone(); // snapshot-derived feeds correct `prefixes`
    let budget = expected_budget(mode, cfg);
    let epochs = match &replay {
        Some((sched, quiet)) => merge_epochs(&script.epochs(), &sched.epochs(*quiet)),
        None => script.epochs(),
    };
    let replay_end = replay
        .as_ref()
        .map(|(s, _)| s.end)
        .unwrap_or(SimDuration::ZERO);
    let activity_end = script.end().max(replay_end);
    let tail = activity_end.saturating_sub(*epochs.last().unwrap());
    let horizon = tail + budget + budget / 2 + SimDuration::from_secs(1);
    let rate = suggested_rate(cfg, budget + activity_end);
    let plan = plan_cycle_measurement(scn.world.now(), rate, &epochs, horizon);
    arm_traffic(&mut scn.world, scn.source, scn.sink, &plan);
    script.apply(&mut scn, plan.t_origin);
    if let Some((sched, _)) = &replay {
        apply_replay(&mut scn, sched, plan.t_origin);
    }

    // The convergence-invariant engine: pre-schedule one FIB walk every
    // `invariant_cadence` inside each cycle window. The samples are
    // read-only kernel events, so the trial stays byte-reproducible —
    // they just aren't free, hence the opt-in.
    let recorder = cfg.invariants.then(|| {
        let model = NetModel {
            routers: std::iter::once(scn.r1)
                .chain(scn.providers.iter().copied())
                .chain(scn.forwarders.iter().copied())
                .collect(),
            switches: vec![scn.switch],
            source: scn.source,
            sink: scn.sink,
        };
        let probe = ProbeSpec {
            src_mac: MAC_SOURCE,
            src_ip: IP_SOURCE,
            gateway_mac: MAC_R1,
            udp_src: sc_traffic::PROBE_SRC_PORT,
            udp_dst: sc_net::wire::udp::port::PROBE,
        };
        let policy = transit_policy(script, &scn, plan.t_origin);
        let flows = scn.flow_ips.clone();
        let recorder = Rc::new(RefCell::new(InvariantRecorder::new(plan.cycles.len())));
        let rec = recorder.clone();
        let sampler = Rc::new(move |world: &mut sc_sim::World, w: usize, _at: SimTime| {
            let flags = sample_flags(world, &model, probe, &policy, &flows);
            rec.borrow_mut().record(w, world.now(), flags);
        });
        schedule_window_samples(&mut scn.world, &plan, cfg.invariant_cadence, sampler);
        recorder
    });

    // Phase 4: walk the cycle windows and harvest each.
    let harvests = run_cycles_and_harvest(&mut scn.world, scn.sink, &plan, cfg.flows);
    // Snapshot the flight recorder once (ring order == causal order) for
    // per-cycle phase reconstruction and the exported artifacts.
    let trace_records: Option<Vec<sc_sim::TraceEvent>> = scn
        .world
        .trace()
        .is_enabled()
        .then(|| scn.world.trace().records().cloned().collect());
    let cycles: Vec<CycleOutcome> = plan
        .cycles
        .iter()
        .zip(&harvests)
        .map(|(w, h)| CycleOutcome {
            fail_at: w.t_fail,
            per_flow: h.per_flow.clone(),
            unrecovered: h.unrecovered,
            degraded: scn.degraded_in_window(w.t_fail, w.t_close),
            phases: trace_records.as_deref().and_then(|recs| {
                let conv = h
                    .per_flow
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                reconstruct_cycle(recs, w.t_fail, w.t_close, conv)
            }),
        })
        .collect();
    // Pooled view: per-flow worst gap over all cycles; end-state health
    // from the last cycle.
    let per_flow: Vec<SimDuration> = (0..cfg.flows)
        .map(|f| {
            cycles
                .iter()
                .map(|c| c.per_flow[f])
                .max()
                .unwrap_or(SimDuration::ZERO)
        })
        .collect();
    let unrecovered = cycles.last().map(|c| c.unrecovered).unwrap_or(0);

    // Export artifacts last: fold every node's lifetime counters into
    // the kernel-merged registry, then serialize the ring. The fold is
    // pure inspection over stopped nodes, so the outcome above is
    // untouched.
    let artifacts = trace_records.is_some().then(|| {
        let mut folded = sc_net::metrics::Registry::enabled();
        for id in std::iter::once(scn.r1)
            .chain(scn.providers.iter().copied())
            .chain(scn.forwarders.iter().copied())
        {
            scn.world
                .node::<sc_router::LegacyRouter>(id)
                .fold_metrics(&mut folded);
        }
        for &c in &scn.controllers {
            scn.world
                .node::<supercharger::Controller>(c)
                .fold_metrics(&mut folded);
        }
        scn.world.metrics_mut().merge(&folded);
        TraceArtifacts {
            jsonl: scn.world.trace().to_jsonl(),
            chrome: scn.world.trace().to_chrome(),
            metrics_json: scn.world.metrics().to_json(),
        }
    });

    let outcome = ScenarioOutcome {
        topology: scn.blueprint.label.clone(),
        script: script.name.clone(),
        mode,
        prefixes: cfg.prefixes,
        seed: cfg.seed,
        rate_pps: rate,
        per_flow,
        unrecovered,
        fail_at: plan.t_fail,
        detected_at: scn.detected_at(plan.t_fail),
        setup_time,
        flow_rewrites: scn.flow_rewrites(),
        flowmod_retries: scn.flowmod_retries(),
        cycles,
        events_processed: scn.world.stats().events_processed,
        events_per_sec: scn.world.events_per_sec() as u64,
        invariants: recorder.map(|rec| rec.borrow().clone().report()),
    };
    (outcome, artifacts)
}

/// The transit bans a script implies: a provider that withdrew a prefix
/// has disclaimed transit for it until it re-announces, so a delivered
/// probe crossing it is a violation even though connectivity looks
/// fine.
fn transit_policy(script: &EventScript, scn: &BuiltScenario, t0: SimTime) -> TransitPolicy {
    let mut rules = Vec::new();
    for ev in &script.events {
        match *ev {
            ScenarioEvent::WithdrawBurst {
                provider,
                at,
                count,
            } => {
                let i = resolve_provider(scn, provider).unwrap();
                rules.push(TransitRule {
                    node: scn.providers[i],
                    prefixes: scn.universe.iter().take(count as usize).copied().collect(),
                    from: t0 + at,
                    until: SimTime::MAX,
                });
            }
            ScenarioEvent::ChurnBurst {
                provider,
                at,
                count,
                cycles,
                period,
            } => {
                let i = resolve_provider(scn, provider).unwrap();
                let prefixes: Vec<_> = scn.universe.iter().take(count as usize).copied().collect();
                for c in 0..cycles as u64 {
                    let from = t0 + at + period * c;
                    rules.push(TransitRule {
                        node: scn.providers[i],
                        prefixes: prefixes.clone(),
                        from,
                        until: from + period / 2,
                    });
                }
            }
            _ => {}
        }
    }
    TransitPolicy { rules }
}

/// Schedule every compiled replay event into the world through the
/// kernel `Scheduler`, under the shared mapping policy
/// ([`ReplaySchedule::map_to_providers`]): recorded peer `k` injects on
/// provider `k % providers` with next-hops rewritten — the same mapping
/// the snapshot-derived feeds used, so withdrawals hit the routes their
/// peer actually announced.
fn apply_replay(scn: &mut BuiltScenario, sched: &ReplaySchedule, t0: SimTime) {
    let mapped = sched.map_to_providers(&scn.replay_peers, &scn.provider_ips, scn.primary);
    for (i, at, update) in mapped {
        let node = scn.providers[i];
        schedule_injection(scn, node, t0 + at, vec![update]);
    }
}

/// A suite: the full matrix of topologies × scripts × modes.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    pub topologies: Vec<TopologySpec>,
    pub scripts: Vec<EventScript>,
    pub modes: Vec<Mode>,
    pub base: ScenarioConfig,
    /// Worker-pool size; `None` = one thread per available core. Perf
    /// runs pin this so wall-clock numbers are comparable.
    pub workers: Option<usize>,
}

impl SuiteConfig {
    /// The default evaluation matrix: three topology families beyond
    /// the paper's lab, the cable-cut and cable-flap scripts, both
    /// modes.
    pub fn default_matrix() -> SuiteConfig {
        SuiteConfig {
            topologies: vec![
                TopologySpec::Fig4Lab,
                TopologySpec::Chain {
                    providers: 2,
                    hops: 2,
                },
                TopologySpec::IxpHub { peers: 4 },
                TopologySpec::Ring {
                    providers: 2,
                    ring: 4,
                },
            ],
            scripts: vec![
                EventScript::primary_cut(),
                EventScript::primary_flap(SimDuration::from_millis(250), 3),
            ],
            modes: vec![Mode::Stock, Mode::Supercharged],
            base: ScenarioConfig::default(),
            workers: None,
        }
    }
}

/// A trial that died: which matrix cell, the configuration it ran
/// under, and the panic message. One bad trial no longer aborts a
/// 100-trial sweep — it lands here instead. The config fields mirror
/// the ones [`CompletedCell`] keys on, so error rows in a report carry
/// enough context for a resume to re-run (not skip) them.
#[derive(Clone, Debug)]
pub struct TrialError {
    pub topology: String,
    pub script: String,
    pub mode: Mode,
    pub prefixes: u32,
    pub seed: u64,
    pub flows: usize,
    pub error: String,
}

/// One completed matrix cell, streamed to `run_suite_with` observers as
/// trials finish.
#[derive(Clone, Debug)]
pub enum TrialResult {
    Ok(ScenarioOutcome),
    Err(TrialError),
}

/// All trial outcomes, in matrix order (topology-major, then script,
/// then mode). Panicked trials are dropped from `rows` and recorded in
/// `errors` (also in matrix order).
#[derive(Clone, Debug)]
pub struct SuiteReport {
    pub rows: Vec<ScenarioOutcome>,
    pub errors: Vec<TrialError>,
}

/// Run the full matrix. Trials run on parallel threads; the report is
/// ordered by matrix position and fully determined by the suite config.
pub fn run_suite(suite: &SuiteConfig) -> SuiteReport {
    run_suite_with(suite, |_, _| {})
}

/// [`run_suite`], streaming: `on_trial(matrix_index, result)` is called
/// from the worker thread the moment each trial completes (completion
/// order, not matrix order — the index says which cell it is). The
/// returned report is still in matrix order. A trial that panics is
/// caught, surfaced as [`TrialResult::Err`], and does not take the rest
/// of the suite down with it. Note the default panic hook still prints
/// each caught panic (message + backtrace) to stderr — deliberate: a
/// silencing hook is process-global and would race parallel test
/// threads; treat stderr banners as diagnostics, the error rows as the
/// record.
pub fn run_suite_with(
    suite: &SuiteConfig,
    on_trial: impl Fn(usize, &TrialResult) + Sync,
) -> SuiteReport {
    run_suite_filtered(suite, |_, _, _| true, on_trial)
}

/// One completed cell parsed from a prior row-per-line report: the
/// matrix coordinates plus the configuration the row was measured
/// under, so a resume with a *different* configuration re-runs instead
/// of silently mixing incompatible rows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompletedCell {
    pub topology: String,
    pub script: String,
    pub mode: String,
    pub prefixes: u64,
    pub seed: u64,
    /// Monitored flow count, recovered from the row's `stats_ns.n`
    /// (the per-flow distribution has one entry per flow).
    pub flows: u64,
}

/// [`run_suite_with`] resuming a partial run: cells listed in
/// `completed` (as parsed from a prior row-per-line report by
/// [`parse_completed_cells`]) are skipped — but only when their
/// recorded `prefixes`/`seed` match the suite's, so a prior report
/// from a different configuration is re-run rather than trusted.
/// The returned report holds only the newly run cells (append its rows
/// to the prior file to reconstruct the full matrix).
pub fn run_suite_resume(
    suite: &SuiteConfig,
    completed: &[CompletedCell],
    on_trial: impl Fn(usize, &TrialResult) + Sync,
) -> SuiteReport {
    // Deterministic hasher (sc-check `no-default-hasher`); membership
    // only, but the suite's reports must never depend on hasher seeds.
    let done: sc_net::FxHashSet<(&str, &str, &str)> = completed
        .iter()
        .filter(|c| {
            c.prefixes == suite.base.prefixes as u64
                && c.seed == suite.base.seed
                && c.flows == suite.base.flows as u64
        })
        .map(|c| (c.topology.as_str(), c.script.as_str(), c.mode.as_str()))
        .collect();
    run_suite_filtered(
        suite,
        |topo, script, mode| {
            !done.contains(&(
                topo.label().as_str(),
                script.name.as_str(),
                mode_label(mode),
            ))
        },
        on_trial,
    )
}

/// Cells already completed in a prior row-per-line JSONL report
/// (`sc-bench scenarios --jsonl > report.jsonl`), in file order. A
/// report from an interrupted run is handled conservatively:
///
/// * a truncated final line (the writer died mid-row) is ignored;
/// * error rows (`{"…","error":…}`) are *not* treated as completed —
///   a resumed run retries them.
pub fn parse_completed_cells(jsonl: &str) -> Vec<CompletedCell> {
    let mut out = Vec::new();
    for line in jsonl.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            continue;
        }
        if extract_json_str(line, "error").is_some() {
            continue;
        }
        let (Some(topology), Some(script), Some(mode), Some(prefixes), Some(seed), Some(flows)) = (
            extract_json_str(line, "topology"),
            extract_json_str(line, "script"),
            extract_json_str(line, "mode"),
            extract_json_u64(line, "prefixes"),
            extract_json_u64(line, "seed"),
            // `stats_ns.n` is the first `"n":` in a row (one per-flow
            // sample per flow), so the flat extractor lands on it.
            extract_json_u64(line, "n"),
        ) else {
            continue;
        };
        out.push(CompletedCell {
            topology,
            script,
            mode,
            prefixes,
            seed,
            flows,
        });
    }
    out
}

/// Pull a string field out of a flat row JSON (labels never contain
/// quotes; the workspace deliberately carries no JSON parser).
fn extract_json_str(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let at = json.find(&needle)? + needle.len();
    let end = json[at..].find('"')?;
    Some(json[at..at + end].to_string())
}

/// Pull an integer field out of a flat row JSON.
fn extract_json_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn run_suite_filtered(
    suite: &SuiteConfig,
    include: impl Fn(&TopologySpec, &EventScript, Mode) -> bool,
    on_trial: impl Fn(usize, &TrialResult) + Sync,
) -> SuiteReport {
    let mut jobs = Vec::new();
    for topo in &suite.topologies {
        for script in &suite.scripts {
            for &mode in &suite.modes {
                if include(topo, script, mode) {
                    jobs.push((topo.clone(), script.clone(), mode));
                }
            }
        }
    }
    // A bounded worker pool: each trial owns a full simulation world,
    // so running the whole matrix at once would hold every RIB/feed in
    // memory simultaneously. Workers pull the next job index from a
    // shared cursor; rows land in their matrix slot, so the report is
    // identical regardless of scheduling.
    //
    // Under a sharded trial scheduler each trial itself runs on
    // `shards` threads, so the pool is capped at
    // `available_parallelism / shards` — workers × shards never
    // oversubscribes the machine, even when `--workers` asks for more.
    let shards = match suite.base.scheduler {
        sc_sim::SchedulerKind::Sharded { shards } => shards.max(1),
        _ => 1,
    };
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let workers = suite
        .workers
        .unwrap_or(avail)
        .min((avail / shards).max(1))
        .max(1)
        .min(jobs.len().max(1));
    let slots: Vec<std::sync::Mutex<Option<TrialResult>>> =
        jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let on_trial = &on_trial;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (jobs, slots, cursor) = (&jobs, &slots, &cursor);
            let base = suite.base.clone();
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some((topo, script, mode)) = jobs.get(i) else {
                    return;
                };
                let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_scenario(topo, script, *mode, &base)
                })) {
                    Ok(outcome) => TrialResult::Ok(outcome),
                    Err(payload) => TrialResult::Err(TrialError {
                        topology: topo.label(),
                        script: script.name.clone(),
                        mode: *mode,
                        prefixes: base.prefixes,
                        seed: base.seed,
                        flows: base.flows,
                        error: panic_message(payload.as_ref()),
                    }),
                };
                on_trial(i, &result);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for slot in slots {
        match slot
            .into_inner()
            .unwrap()
            .expect("worker filled every slot")
        {
            TrialResult::Ok(outcome) => rows.push(outcome),
            TrialResult::Err(e) => errors.push(e),
        }
    }
    SuiteReport { rows, errors }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "trial panicked (non-string payload)".to_string()
    }
}

/// The CSV column set; `error` is last so error rows can pad every
/// metric column and append the message.
const CSV_HEADER: [&str; 29] = [
    "topology",
    "script",
    "mode",
    "prefixes",
    "flows",
    "rate_pps",
    "median_us",
    "p95_us",
    "max_us",
    "mean_us",
    "unrecovered",
    "detection_us",
    "flow_rewrites",
    "cycles",
    "cycle_median_us",
    "cycle_p95_us",
    "cycle_unrecovered",
    "events",
    "events_per_sec",
    "viol_blackhole_us",
    "viol_loop_us",
    "viol_transit_us",
    "degraded_us",
    "flowmod_retries",
    "detect_us",
    "notify_us",
    "program_us",
    "fib_us",
    "error",
];

impl SuiteReport {
    /// Per-scenario box statistics as CSV (durations in microseconds).
    /// Multi-epoch scripts add per-cycle columns (`;`-joined, one entry
    /// per cycle in onset order); panicked trials emit a row with blank
    /// metrics and the panic message in `error`. Includes the
    /// wall-clock `events_per_sec` perf column — use
    /// [`SuiteReport::to_csv_stable`] for byte-reproducible files.
    pub fn to_csv(&self) -> String {
        self.csv_impl(true)
    }

    /// [`SuiteReport::to_csv`] with the wall-clock `events_per_sec`
    /// column left blank: identical suite configs produce byte-identical
    /// files (the determinism regression contract).
    pub fn to_csv_stable(&self) -> String {
        self.csv_impl(false)
    }

    fn csv_impl(&self, wallclock: bool) -> String {
        let mut csv = Csv::new(&CSV_HEADER);
        let us = |d: SimDuration| (d.as_nanos() / 1_000).to_string();
        for row in &self.rows {
            let s = row.stats();
            let joined = |f: &dyn Fn(&CycleOutcome) -> String| {
                row.cycles.iter().map(f).collect::<Vec<_>>().join(";")
            };
            // Invariant columns stay blank when the engine was off — a
            // zero would be indistinguishable from "checked and clean".
            let viol = |c: ViolationClass| {
                row.invariants
                    .as_ref()
                    .map(|inv| us(inv.total(c)))
                    .unwrap_or_default()
            };
            // Phase columns stay fully blank for untraced rows; a traced
            // row joins per-cycle values, blanking cycles whose anchors
            // the reconstructor could not find.
            let phase = |f: &dyn Fn(&CyclePhases) -> SimDuration| {
                if row.cycles.iter().any(|c| c.phases.is_some()) {
                    joined(&|c| c.phases.as_ref().map(|p| us(f(p))).unwrap_or_default())
                } else {
                    String::new()
                }
            };
            csv.row(&[
                row.topology.clone(),
                row.script.clone(),
                mode_label(row.mode).to_string(),
                row.prefixes.to_string(),
                row.per_flow.len().to_string(),
                row.rate_pps.to_string(),
                us(s.median),
                us(s.p95),
                us(s.max),
                us(s.mean),
                row.unrecovered.to_string(),
                row.detected_at
                    .map(|t| ((t - row.fail_at).as_nanos() / 1_000).to_string())
                    .unwrap_or_default(),
                row.flow_rewrites.map(|n| n.to_string()).unwrap_or_default(),
                row.cycles.len().to_string(),
                joined(&|c| us(c.stats().median)),
                joined(&|c| us(c.stats().p95)),
                joined(&|c| c.unrecovered.to_string()),
                row.events_processed.to_string(),
                if wallclock {
                    row.events_per_sec.to_string()
                } else {
                    String::new()
                },
                viol(ViolationClass::Blackhole),
                viol(ViolationClass::Loop),
                viol(ViolationClass::Transit),
                // Degraded time per cycle (`;`-joined like the other
                // cycle columns); blank in legacy mode, where the
                // concept does not exist.
                if row.flowmod_retries.is_some() {
                    joined(&|c| us(c.degraded))
                } else {
                    String::new()
                },
                row.flowmod_retries
                    .map(|n| n.to_string())
                    .unwrap_or_default(),
                // Trace-reconstructed phase columns (`;`-joined per
                // cycle, like the other cycle columns); blank when the
                // trial ran untraced or a cycle's anchors were missing.
                phase(&|p| p.detect),
                phase(&|p| p.notify),
                phase(&|p| p.program),
                phase(&|p| p.fib),
                String::new(),
            ]);
        }
        for e in &self.errors {
            // Config columns stay populated on error rows so a resume
            // keyed off the report re-keys the cell correctly.
            let mut fields = vec![
                e.topology.clone(),
                e.script.clone(),
                mode_label(e.mode).to_string(),
                e.prefixes.to_string(),
                e.flows.to_string(),
            ];
            fields.resize(CSV_HEADER.len() - 1, String::new());
            fields.push(e.error.clone());
            csv.row(&fields);
        }
        csv.finish()
    }

    /// One outcome as a JSON object — the row format of both
    /// [`SuiteReport::to_json`] and the `sc-bench scenarios --jsonl`
    /// stream (all durations in nanoseconds). Carries the wall-clock
    /// `perf.events_per_sec`; [`SuiteReport::row_json_stable`] omits it.
    pub fn row_json(row: &ScenarioOutcome) -> Json {
        Self::row_json_impl(row, true)
    }

    /// [`SuiteReport::row_json`] without the wall-clock field —
    /// identical trials serialize byte-identically.
    pub fn row_json_stable(row: &ScenarioOutcome) -> Json {
        Self::row_json_impl(row, false)
    }

    fn row_json_impl(row: &ScenarioOutcome, wallclock: bool) -> Json {
        let s = row.stats();
        let ns = |d: SimDuration| Json::Int(d.as_nanos());
        let stats_obj = |s: &BoxStats| {
            let mut st = Json::object();
            st.push("n", Json::Int(s.n as u64))
                .push("min", ns(s.min))
                .push("p5", ns(s.p5))
                .push("q1", ns(s.q1))
                .push("median", ns(s.median))
                .push("q3", ns(s.q3))
                .push("p95", ns(s.p95))
                .push("max", ns(s.max))
                .push("mean", ns(s.mean));
            st
        };
        let mut obj = Json::object();
        obj.push("topology", Json::str(&row.topology))
            .push("script", Json::str(&row.script))
            .push("mode", Json::str(mode_label(row.mode)))
            .push("prefixes", Json::Int(row.prefixes as u64))
            .push("seed", Json::Int(row.seed))
            .push("rate_pps", Json::Int(row.rate_pps))
            .push("unrecovered", Json::Int(row.unrecovered as u64))
            .push("setup_time_ns", Json::Int(row.setup_time.as_nanos()))
            .push(
                "detection_ns",
                match row.detected_at {
                    Some(t) => Json::Int((t - row.fail_at).as_nanos()),
                    None => Json::str("none"),
                },
            )
            .push(
                "flow_rewrites",
                match row.flow_rewrites {
                    Some(n) => Json::Int(n as u64),
                    None => Json::str("n/a"),
                },
            )
            .push(
                "flowmod_retries",
                match row.flowmod_retries {
                    Some(n) => Json::Int(n),
                    None => Json::str("n/a"),
                },
            )
            .push(
                "degraded_ns",
                match row.flowmod_retries {
                    // Same applicability as the retries counter: the
                    // degradation machinery only exists supercharged.
                    Some(_) => ns(row
                        .cycles
                        .iter()
                        .map(|c| c.degraded)
                        .fold(SimDuration::ZERO, |a, b| a + b)),
                    None => Json::str("n/a"),
                },
            )
            .push("perf", {
                let mut perf = Json::object();
                perf.push("events", Json::Int(row.events_processed));
                if wallclock {
                    perf.push("events_per_sec", Json::Int(row.events_per_sec));
                }
                perf
            })
            .push("stats_ns", stats_obj(&s))
            .push(
                "per_flow_ns",
                Json::Array(
                    row.per_flow
                        .iter()
                        .map(|d| Json::Int(d.as_nanos()))
                        .collect(),
                ),
            )
            .push(
                "cycles",
                Json::Array(
                    row.cycles
                        .iter()
                        .enumerate()
                        .map(|(i, c)| {
                            let mut cy = Json::object();
                            cy.push("fail_at_ns", Json::Int(c.fail_at.as_nanos()))
                                .push("unrecovered", Json::Int(c.unrecovered as u64))
                                .push("stats_ns", stats_obj(&c.stats()));
                            if row.flowmod_retries.is_some() {
                                cy.push("degraded_ns", ns(c.degraded));
                            }
                            // Phase fields appear only on traced runs, so
                            // untraced reports keep their prior byte shape.
                            if let Some(p) = &c.phases {
                                cy.push("detect_ns", ns(p.detect))
                                    .push("notify_ns", ns(p.notify))
                                    .push("program_ns", ns(p.program))
                                    .push("fib_ns", ns(p.fib));
                            }
                            if let Some(w) =
                                row.invariants.as_ref().and_then(|inv| inv.windows.get(i))
                            {
                                cy.push("inv_samples", Json::Int(w.samples))
                                    .push(
                                        "viol_blackhole_ns",
                                        ns(w.duration(ViolationClass::Blackhole)),
                                    )
                                    .push("viol_loop_ns", ns(w.duration(ViolationClass::Loop)))
                                    .push(
                                        "viol_transit_ns",
                                        ns(w.duration(ViolationClass::Transit)),
                                    );
                            }
                            cy
                        })
                        .collect(),
                ),
            );
        // The invariant block only appears when the engine ran, so
        // reports from uninstrumented runs keep their prior byte shape.
        if let Some(inv) = &row.invariants {
            let mut o = Json::object();
            o.push("samples", Json::Int(inv.samples()))
                .push(
                    "viol_blackhole_ns",
                    ns(inv.total(ViolationClass::Blackhole)),
                )
                .push("viol_loop_ns", ns(inv.total(ViolationClass::Loop)))
                .push("viol_transit_ns", ns(inv.total(ViolationClass::Transit)))
                .push(
                    "hits_blackhole",
                    Json::Int(inv.hits(ViolationClass::Blackhole)),
                )
                .push("hits_loop", Json::Int(inv.hits(ViolationClass::Loop)))
                .push("hits_transit", Json::Int(inv.hits(ViolationClass::Transit)));
            obj.push("invariants", o);
        }
        obj
    }

    /// A trial error as a JSON object (the `--jsonl` stream emits these
    /// inline; [`SuiteReport::to_json`] collects them under `errors`).
    pub fn error_json(e: &TrialError) -> Json {
        let mut obj = Json::object();
        obj.push("topology", Json::str(&e.topology))
            .push("script", Json::str(&e.script))
            .push("mode", Json::str(mode_label(e.mode)))
            .push("prefixes", Json::Int(e.prefixes as u64))
            .push("seed", Json::Int(e.seed))
            .push("flows", Json::Int(e.flows as u64))
            .push("error", Json::str(&e.error));
        obj
    }

    /// The machine-readable summary (all durations in nanoseconds).
    /// Rows carry the wall-clock `perf.events_per_sec`; for a
    /// byte-reproducible file use [`SuiteReport::to_json_stable`].
    pub fn to_json(&self) -> String {
        self.json_impl(true)
    }

    /// [`SuiteReport::to_json`] minus the wall-clock perf field:
    /// identical suite configs produce byte-identical files.
    pub fn to_json_stable(&self) -> String {
        self.json_impl(false)
    }

    fn json_impl(&self, wallclock: bool) -> String {
        let mut root = Json::object();
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| Self::row_json_impl(r, wallclock))
            .collect();
        root.push("rows", Json::Array(rows));
        root.push(
            "errors",
            Json::Array(self.errors.iter().map(Self::error_json).collect()),
        );
        root.push(
            "speedups",
            Json::Array(
                self.speedups()
                    .into_iter()
                    .map(|(topo, script, x)| {
                        let mut o = Json::object();
                        o.push("topology", Json::str(topo))
                            .push("script", Json::str(script))
                            .push("median_speedup_x1000", Json::Int((x * 1000.0) as u64));
                        o
                    })
                    .collect(),
            ),
        );
        root.to_string()
    }

    /// Median legacy/supercharged speedup per (topology, script) pair
    /// present in both modes.
    pub fn speedups(&self) -> Vec<(String, String, f64)> {
        let mut out = Vec::new();
        for row in &self.rows {
            if row.mode != Mode::Supercharged {
                continue;
            }
            let legacy = self.rows.iter().find(|r| {
                r.mode == Mode::Stock && r.topology == row.topology && r.script == row.script
            });
            if let Some(l) = legacy {
                let sup = row.stats().median.as_nanos().max(1) as f64;
                let leg = l.stats().median.as_nanos() as f64;
                out.push((row.topology.clone(), row.script.clone(), leg / sup));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A partial `--jsonl` report as an interrupted run leaves it: two
    /// good rows, an error row (must be retried), and a final line
    /// truncated mid-write (must be ignored).
    const TRUNCATED_JSONL: &str = concat!(
        "{\"topology\":\"chain-2x1\",\"script\":\"primary-cut\",\"mode\":\"legacy\",",
        "\"prefixes\":300,\"seed\":42,\"perf\":{\"events\":1},\"stats_ns\":{\"n\":10}}\n",
        "{\"topology\":\"chain-2x1\",\"script\":\"primary-cut\",\"mode\":\"supercharged\",",
        "\"prefixes\":300,\"seed\":42,\"perf\":{\"events\":1},\"stats_ns\":{\"n\":10}}\n",
        "{\"topology\":\"ixp-3\",\"script\":\"primary-cut\",\"mode\":\"legacy\",",
        "\"error\":\"trial panicked\"}\n",
        "{\"topology\":\"ixp-3\",\"script\":\"primary-cut\",\"mode\":\"supercharg",
    );

    #[test]
    fn parse_completed_cells_skips_errors_and_truncation() {
        let cells = parse_completed_cells(TRUNCATED_JSONL);
        let cell = |mode: &str| CompletedCell {
            topology: "chain-2x1".to_string(),
            script: "primary-cut".to_string(),
            mode: mode.to_string(),
            prefixes: 300,
            seed: 42,
            flows: 10,
        };
        assert_eq!(cells, vec![cell("legacy"), cell("supercharged")]);
        assert_eq!(parse_completed_cells(""), Vec::new());
        assert_eq!(parse_completed_cells("not json\n{\"x\":1}"), Vec::new());
    }
}
