//! Parametric topology generators.
//!
//! Every generated topology keeps the paper's invariant — the SDN
//! switch sits between the supercharged router R1 and its BGP peers —
//! and varies everything the related work says matters: peer count,
//! delivery-path depth, link latencies, and controller placement
//! (Gämperli et al., arXiv:1611.03113; Sermpezis & Dimitropoulos,
//! arXiv:1702.00188 both find centralization benefits are strongly
//! topology-dependent).
//!
//! A [`TopologySpec`] elaborates into a [`Blueprint`]: the star of
//! provider routers around the switch, plus each provider's delivery
//! path to the measurement sink through shared *forwarder* routers
//! (plain IP routers with static routes, `Calibration::instant`, no
//! BGP). Chains, rings, fat-tree pods and random graphs differ only in
//! the forwarder graph; the Fig. 4 lab is the degenerate two-provider,
//! zero-forwarder case and keeps delegating to
//! [`sc_lab::topology::ConvergenceLab`] so the paper reproduction stays
//! bit-for-bit what it was.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_net::SimDuration;

/// A parametric topology family.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// The paper's Fig. 4 hardware lab, built by
    /// [`sc_lab::topology::ConvergenceLab`] (R1 + two providers).
    Fig4Lab,
    /// `providers` parallel chains of `hops` forwarders each: provider
    /// i delivers through its own chain. Models long transit paths.
    Chain { providers: usize, hops: usize },
    /// A ring of `ring` forwarders; provider i enters the ring at an
    /// evenly-spaced position and traffic travels the arc down to the
    /// sink attachment. The closing arc exists but carries no routes.
    Ring { providers: usize, ring: usize },
    /// A k-ary Clos/fat-tree pod: k providers feed k/2 aggregation
    /// forwarders which feed one edge forwarder holding the sink.
    FatTreePod { k: usize },
    /// An IXP-style hub (the paper's §5 "boosting an IXP"): `peers`
    /// participant routers fan directly out of the switch, each a
    /// one-hop path to the sink.
    IxpHub { peers: usize },
    /// A seeded random topology: 2..=6 providers, random private-chain
    /// depths (0..=3), random link latencies, random preference order.
    Random { seed: u64 },
}

impl TopologySpec {
    /// A short, filesystem/CSV-safe label.
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Fig4Lab => "fig4".to_string(),
            TopologySpec::Chain { providers, hops } => format!("chain{providers}x{hops}"),
            TopologySpec::Ring { providers, ring } => format!("ring{providers}r{ring}"),
            TopologySpec::FatTreePod { k } => format!("fattree{k}"),
            TopologySpec::IxpHub { peers } => format!("ixp{peers}"),
            TopologySpec::Random { seed } => format!("rand{seed}"),
        }
    }

    /// Elaborate into the provider/forwarder blueprint. Panics on
    /// degenerate parameters (a scenario needs a primary *and* a
    /// backup).
    pub fn blueprint(&self) -> Blueprint {
        match *self {
            TopologySpec::Fig4Lab => Blueprint {
                label: self.label(),
                providers: vec![ProviderSpec::new(200, None), ProviderSpec::new(100, None)],
                forwarders: Vec::new(),
                ring_closer: None,
            },
            TopologySpec::Chain { providers, hops } => {
                assert!(providers >= 2, "need a primary and a backup");
                let mut forwarders = Vec::new();
                let mut specs = Vec::new();
                for i in 0..providers {
                    // Private chain: F_{i,0} -> ... -> F_{i,hops-1} -> sink.
                    let base = forwarders.len();
                    for h in 0..hops {
                        forwarders.push(ForwarderSpec {
                            next: if h + 1 < hops {
                                Some(base + h + 1)
                            } else {
                                None
                            },
                            latency: SimDuration::from_micros(50),
                        });
                    }
                    specs.push(ProviderSpec::new(
                        200 - (i as u32) * 10,
                        if hops > 0 { Some(base) } else { None },
                    ));
                }
                Blueprint {
                    label: self.label(),
                    providers: specs,
                    forwarders,
                    ring_closer: None,
                }
            }
            TopologySpec::Ring { providers, ring } => {
                assert!(providers >= 2, "need a primary and a backup");
                assert!(ring >= 2, "a ring needs at least two nodes");
                // F_0 holds the sink; F_j forwards down to F_{j-1}.
                let forwarders: Vec<ForwarderSpec> = (0..ring)
                    .map(|j| ForwarderSpec {
                        next: if j == 0 { None } else { Some(j - 1) },
                        latency: SimDuration::from_micros(100),
                    })
                    .collect();
                let specs = (0..providers)
                    .map(|i| {
                        // Spread entry points around the ring.
                        let entry = (i * ring) / providers;
                        ProviderSpec::new(200 - (i as u32) * 10, Some(entry))
                    })
                    .collect();
                Blueprint {
                    label: self.label(),
                    providers: specs,
                    forwarders,
                    ring_closer: Some((ring - 1, 0)),
                }
            }
            TopologySpec::FatTreePod { k } => {
                assert!(k >= 2 && k % 2 == 0, "fat-tree pods have even k >= 2");
                // Forwarder 0 is the edge (sink holder); 1..=k/2 are
                // aggregation forwarders feeding it.
                let mut forwarders = vec![ForwarderSpec {
                    next: None,
                    latency: SimDuration::from_micros(20),
                }];
                for _ in 0..k / 2 {
                    forwarders.push(ForwarderSpec {
                        next: Some(0),
                        latency: SimDuration::from_micros(20),
                    });
                }
                let specs = (0..k)
                    .map(|i| ProviderSpec::new(200 - (i as u32) * 10, Some(1 + i % (k / 2))))
                    .collect();
                Blueprint {
                    label: self.label(),
                    providers: specs,
                    forwarders,
                    ring_closer: None,
                }
            }
            TopologySpec::IxpHub { peers } => {
                assert!(peers >= 2, "an IXP needs at least two participants");
                Blueprint {
                    label: self.label(),
                    providers: (0..peers)
                        .map(|i| ProviderSpec::new(200 - (i as u32) * 10, None))
                        .collect(),
                    forwarders: Vec::new(),
                    ring_closer: None,
                }
            }
            TopologySpec::Random { seed } => {
                let mut rng = SmallRng::seed_from_u64(seed ^ 0x70b0_70b0);
                let providers = rng.gen_range(2..=6usize);
                let mut forwarders = Vec::new();
                let mut specs = Vec::new();
                // Random preference permutation (Fisher-Yates).
                let mut prefs: Vec<u32> = (0..providers).map(|i| 200 - (i as u32) * 10).collect();
                for i in (1..prefs.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    prefs.swap(i, j);
                }
                for pref in prefs {
                    let hops = rng.gen_range(0..=3usize);
                    let base = forwarders.len();
                    for h in 0..hops {
                        forwarders.push(ForwarderSpec {
                            next: if h + 1 < hops {
                                Some(base + h + 1)
                            } else {
                                None
                            },
                            latency: SimDuration::from_micros(rng.gen_range(10..500u64)),
                        });
                    }
                    let mut spec =
                        ProviderSpec::new(pref, if hops > 0 { Some(base) } else { None });
                    spec.lan_latency = SimDuration::from_micros(rng.gen_range(5..100u64));
                    specs.push(spec);
                }
                Blueprint {
                    label: self.label(),
                    providers: specs,
                    forwarders,
                    ring_closer: None,
                }
            }
        }
    }
}

/// One provider router around the switch.
#[derive(Clone, Debug, PartialEq)]
pub struct ProviderSpec {
    /// Import preference R1/the controller assigns to this provider's
    /// routes. The highest value is the primary.
    pub local_pref: u32,
    /// Index into [`Blueprint::forwarders`] where this provider's
    /// delivery path enters; `None` attaches the sink directly.
    pub entry: Option<usize>,
    /// Latency of the provider's link to the switch.
    pub lan_latency: SimDuration,
}

impl ProviderSpec {
    pub fn new(local_pref: u32, entry: Option<usize>) -> ProviderSpec {
        ProviderSpec {
            local_pref,
            entry,
            lan_latency: SimDuration::from_micros(10),
        }
    }
}

/// One forwarder (static-route relay) in the delivery fabric.
#[derive(Clone, Debug, PartialEq)]
pub struct ForwarderSpec {
    /// The next forwarder toward the sink; `None` means this forwarder
    /// holds the sink attachment.
    pub next: Option<usize>,
    /// Latency of this forwarder's uplink (toward `next` or the sink).
    pub latency: SimDuration,
}

/// The elaborated topology: what [`crate::builder`] wires into a world.
#[derive(Clone, Debug, PartialEq)]
pub struct Blueprint {
    pub label: String,
    /// Not necessarily preference-ordered (`Random` shuffles prefs) —
    /// use [`Blueprint::primary`]/[`Blueprint::rank_order`], never
    /// index 0, to find the primary.
    pub providers: Vec<ProviderSpec>,
    pub forwarders: Vec<ForwarderSpec>,
    /// An extra routeless link closing a ring, by forwarder indices.
    pub ring_closer: Option<(usize, usize)>,
}

impl Blueprint {
    /// The provider ranked `rank` by preference (0 = primary).
    pub fn rank_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.providers.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.providers[i].local_pref));
        idx
    }

    /// Index of the primary (highest local-pref) provider.
    pub fn primary(&self) -> usize {
        self.rank_order()[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_stable() {
        let specs = [
            TopologySpec::Fig4Lab,
            TopologySpec::Chain {
                providers: 3,
                hops: 2,
            },
            TopologySpec::Ring {
                providers: 2,
                ring: 4,
            },
            TopologySpec::FatTreePod { k: 4 },
            TopologySpec::IxpHub { peers: 6 },
            TopologySpec::Random { seed: 7 },
        ];
        let labels: std::collections::HashSet<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), specs.len());
        assert_eq!(TopologySpec::FatTreePod { k: 4 }.label(), "fattree4");
    }

    #[test]
    fn chain_blueprint_has_private_chains() {
        let bp = TopologySpec::Chain {
            providers: 3,
            hops: 2,
        }
        .blueprint();
        assert_eq!(bp.providers.len(), 3);
        assert_eq!(bp.forwarders.len(), 6);
        // Each provider enters its own chain head.
        let entries: Vec<usize> = bp.providers.iter().map(|p| p.entry.unwrap()).collect();
        assert_eq!(entries, vec![0, 2, 4]);
        // Chains terminate at the sink.
        assert_eq!(bp.forwarders[1].next, None);
        assert_eq!(bp.forwarders[0].next, Some(1));
    }

    #[test]
    fn ring_blueprint_descends_to_sink_holder() {
        let bp = TopologySpec::Ring {
            providers: 2,
            ring: 4,
        }
        .blueprint();
        assert_eq!(bp.forwarders[0].next, None);
        assert_eq!(bp.forwarders[3].next, Some(2));
        assert_eq!(bp.ring_closer, Some((3, 0)));
        assert_eq!(bp.providers[0].entry, Some(0));
        assert_eq!(bp.providers[1].entry, Some(2));
    }

    #[test]
    fn fattree_pod_shares_aggregation() {
        let bp = TopologySpec::FatTreePod { k: 4 }.blueprint();
        assert_eq!(bp.providers.len(), 4);
        assert_eq!(bp.forwarders.len(), 3); // edge + 2 agg
        let entries: Vec<usize> = bp.providers.iter().map(|p| p.entry.unwrap()).collect();
        assert_eq!(entries, vec![1, 2, 1, 2]);
    }

    #[test]
    fn random_blueprint_is_deterministic() {
        let a = TopologySpec::Random { seed: 3 }.blueprint();
        let b = TopologySpec::Random { seed: 3 }.blueprint();
        assert_eq!(a, b);
        let c = TopologySpec::Random { seed: 4 }.blueprint();
        assert_ne!(a, c);
        assert!(a.providers.len() >= 2);
    }

    #[test]
    fn primary_is_highest_pref() {
        let bp = TopologySpec::Random { seed: 11 }.blueprint();
        let p = bp.primary();
        assert!(bp
            .providers
            .iter()
            .all(|s| s.local_pref <= bp.providers[p].local_pref));
    }
}
