//! End-to-end tests of graceful degradation: cut the primary and crash
//! the (only) controller at adversarial instants — before the fallback
//! BFD detects the cut, mid-reaction, and long after the controller
//! already converged the dataplane. The supercharged-degraded cell must
//! do no harm relative to the legacy baseline on the same script and
//! seed: per-cycle convergence no worse, no violation window wider. A
//! restarted controller must reconcile (engine resync, degraded-mode
//! exit); without a restart, degradation must persist to the horizon.
//! Degraded-annotated stable reports stay byte-identical across reruns
//! and kernel schedulers.

use sc_net::SimDuration;
use sc_scenarios::{
    run_scenario, run_suite, EventScript, LinkRef, Mode, ProviderSel, ScenarioConfig,
    ScenarioEvent, SuiteConfig, TopologySpec, ViolationClass,
};

/// Seconds-scale trial config with the full robustness stack on:
/// controller keepalive beacons every 10 ms, a 50 ms router-side
/// liveness deadline (≥ half the fallback BFD detection time, so the
/// degraded recompute always quarantines the dead primary), direct
/// fallback BGP sessions, and the invariant engine.
fn robust_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        prefixes: 300,
        flows: 10,
        seed,
        invariants: true,
        echo_interval: Some(SimDuration::from_millis(10)),
        controller_deadline: Some(SimDuration::from_millis(50)),
        fallback_sessions: true,
        ..ScenarioConfig::default()
    }
}

/// Primary cut at the origin, controller 0 crashed `crash_at` later.
/// Legacy builds no-op the crash, so both modes measure identical
/// windows: [origin, crash) and [crash, horizon].
fn cut_then_crash(crash_at: SimDuration) -> EventScript {
    EventScript::new(
        "cut-crash",
        vec![
            ScenarioEvent::LinkDown {
                link: LinkRef::ProviderSwitch(ProviderSel::Primary),
                at: SimDuration::ZERO,
            },
            ScenarioEvent::CrashController {
                replica: 0,
                at: crash_at,
            },
        ],
    )
}

#[test]
fn controller_crash_at_any_instant_is_never_worse_than_legacy() {
    // The sweep: crash before the controller reacts (1 ms), mid-reaction
    // (5 ms), after the supercharged dataplane converged but before the
    // fallback BFD would fire (20 ms), and long after (100 ms). The
    // worst case is the early crash — R1 must fall back on its own
    // (liveness deadline + BFD-stale quarantine) without ever having
    // been rescued by the controller.
    for topo in [
        TopologySpec::Chain {
            providers: 2,
            hops: 1,
        },
        TopologySpec::IxpHub { peers: 3 },
    ] {
        for crash_ms in [1u64, 5, 20, 100] {
            let cfg = robust_cfg(42);
            let script = cut_then_crash(SimDuration::from_millis(crash_ms));
            let leg = run_scenario(&topo, &script, Mode::Stock, &cfg);
            let sup = run_scenario(&topo, &script, Mode::Supercharged, &cfg);
            let tag = format!("{topo:?} crash@{crash_ms}ms");

            // Per-cycle do-no-harm on the convergence distribution.
            assert_eq!(leg.cycles.len(), sup.cycles.len(), "{tag}");
            for (i, (lc, sc)) in leg.cycles.iter().zip(&sup.cycles).enumerate() {
                let (l, s) = (lc.stats(), sc.stats());
                assert!(
                    s.median <= l.median && s.max <= l.max,
                    "{tag} cycle {i}: supercharged-degraded {:?}/{:?} worse \
                     than legacy {:?}/{:?}",
                    s.median,
                    s.max,
                    l.median,
                    l.max
                );
                assert_eq!(
                    lc.degraded,
                    SimDuration::ZERO,
                    "{tag}: legacy rows must never report degraded time"
                );
            }
            // Degradation actually happened (the crash was not a no-op
            // on the supercharged side) and end-state health holds.
            let degraded: SimDuration = sup
                .cycles
                .iter()
                .map(|c| c.degraded)
                .fold(SimDuration::ZERO, |a, b| a + b);
            assert!(degraded > SimDuration::ZERO, "{tag}: never degraded");
            assert_eq!(leg.unrecovered, 0, "{tag}");
            assert_eq!(sup.unrecovered, 0, "{tag}");

            // Zero violation widening, per window and per class.
            let (li, si) = (
                leg.invariants.as_ref().expect("engine was on"),
                sup.invariants.as_ref().expect("engine was on"),
            );
            assert_eq!(li.windows.len(), si.windows.len(), "{tag}");
            for (w, (lw, sw)) in li.windows.iter().zip(&si.windows).enumerate() {
                for class in [
                    ViolationClass::Blackhole,
                    ViolationClass::Loop,
                    ViolationClass::Transit,
                ] {
                    assert!(
                        sw.duration(class) <= lw.duration(class),
                        "{tag} window {w} {class:?}: supercharged {} wider \
                         than legacy {}",
                        sw.duration(class),
                        lw.duration(class)
                    );
                }
            }
        }
    }
}

#[test]
fn degradation_persists_until_the_controller_returns() {
    // Without a restart the controller stays dead: R1 must hold
    // degraded mode to the measurement horizon (≥ 1 s past the crash
    // onset), not flap back on its own.
    let topo = TopologySpec::Chain {
        providers: 2,
        hops: 1,
    };
    let cfg = robust_cfg(42);
    let script = cut_then_crash(SimDuration::from_millis(20));
    let sup = run_scenario(&topo, &script, Mode::Supercharged, &cfg);
    let last = sup.cycles.last().expect("crash opens a window");
    assert!(
        last.degraded > SimDuration::from_millis(800),
        "degraded mode ended early ({:?}) with no controller to return to",
        last.degraded
    );
    assert_eq!(sup.unrecovered, 0, "fallback plane must still converge");
}

#[test]
fn controller_restart_reconciles_and_exits_degraded_mode() {
    // Boot a fresh controller into the crashed slot at +300 ms: the
    // handshakes and engine resync rerun, R1 sees fresh liveness
    // evidence and leaves degraded mode. The degraded interval is then
    // bounded by the outage (+ re-establishment lag) — far below the
    // ≥ 1 s final window a stuck degradation would fill.
    let topo = TopologySpec::Chain {
        providers: 2,
        hops: 1,
    };
    let cfg = robust_cfg(42);
    let script = EventScript::new(
        "cut-crash-restart",
        vec![
            ScenarioEvent::LinkDown {
                link: LinkRef::ProviderSwitch(ProviderSel::Primary),
                at: SimDuration::ZERO,
            },
            ScenarioEvent::CrashController {
                replica: 0,
                at: SimDuration::from_millis(20),
            },
            ScenarioEvent::RestartController {
                replica: 0,
                at: SimDuration::from_millis(300),
            },
        ],
    );
    let sup = run_scenario(&topo, &script, Mode::Supercharged, &cfg);
    let degraded: SimDuration = sup
        .cycles
        .iter()
        .map(|c| c.degraded)
        .fold(SimDuration::ZERO, |a, b| a + b);
    assert!(
        degraded > SimDuration::ZERO,
        "the crash must degrade R1 first"
    );
    assert!(
        degraded < SimDuration::from_secs(1),
        "degraded {degraded:?}: R1 never reconciled with the restarted \
         controller"
    );
    assert_eq!(sup.unrecovered, 0, "post-reconciliation dataplane health");
    // Reconciliation must not cost correctness: the restarted
    // controller's resync may rewrite rules, but nothing may blackhole
    // or loop after the fallback plane already converged the FIB.
    let inv = sup.invariants.as_ref().expect("engine was on");
    let leg = run_scenario(&topo, &script, Mode::Stock, &cfg);
    let li = leg.invariants.as_ref().expect("engine was on");
    for (w, (lw, sw)) in li.windows.iter().zip(&inv.windows).enumerate() {
        for class in [
            ViolationClass::Blackhole,
            ViolationClass::Loop,
            ViolationClass::Transit,
        ] {
            assert!(
                sw.duration(class) <= lw.duration(class),
                "window {w} {class:?} widened across the restart"
            );
        }
    }
}

#[test]
fn degraded_reports_are_byte_identical_across_reruns_and_schedulers() {
    let script = || {
        EventScript::new(
            "cut-crash-restart",
            vec![
                ScenarioEvent::LinkDown {
                    link: LinkRef::ProviderSwitch(ProviderSel::Primary),
                    at: SimDuration::ZERO,
                },
                ScenarioEvent::CrashController {
                    replica: 0,
                    at: SimDuration::from_millis(20),
                },
                ScenarioEvent::RestartController {
                    replica: 0,
                    at: SimDuration::from_millis(300),
                },
            ],
        )
    };
    let suite = |scheduler| SuiteConfig {
        topologies: vec![TopologySpec::Chain {
            providers: 2,
            hops: 1,
        }],
        scripts: vec![script()],
        modes: vec![Mode::Stock, Mode::Supercharged],
        base: ScenarioConfig {
            scheduler,
            ..robust_cfg(42)
        },
        workers: Some(2),
    };
    let wheel = suite(sc_sim::SchedulerKind::TimerWheel);
    let a = run_suite(&wheel);
    let b = run_suite(&wheel);
    assert!(a.errors.is_empty(), "{:?}", a.errors);
    assert_eq!(
        a.to_csv_stable(),
        b.to_csv_stable(),
        "stable CSV must be byte-identical across reruns"
    );
    assert_eq!(a.to_json_stable(), b.to_json_stable());
    let heap = run_suite(&suite(sc_sim::SchedulerKind::ReferenceHeap));
    assert_eq!(
        a.to_csv_stable(),
        heap.to_csv_stable(),
        "stable CSV must not depend on the kernel scheduler"
    );
    assert_eq!(a.to_json_stable(), heap.to_json_stable());
    // The robustness columns actually carry data (all-blank cells would
    // pass the byte-diffs above).
    let csv = a.to_csv_stable();
    let header = csv.lines().next().unwrap();
    assert!(header.contains("degraded_us"));
    assert!(header.contains("flowmod_retries"));
    let sup_row = csv
        .lines()
        .find(|l| l.contains("supercharged"))
        .expect("supercharged row present");
    let degraded_col = header.split(',').position(|c| c == "degraded_us").unwrap();
    let cell = sup_row.split(',').nth(degraded_col).unwrap();
    assert!(
        cell.split(';')
            .any(|v| v.parse::<u64>().map(|n| n > 0).unwrap_or(false)),
        "supercharged degraded_us cell empty: {cell:?}"
    );
}
