//! Property tests over the event-script algebra: for *arbitrary* mixes
//! of scenario events — including the chaos variants — `epochs()` is
//! strictly sorted and deduplicated, every epoch is some event's onset,
//! and `end()` dominates every epoch. The measurement windower slices
//! the run at these instants, so a duplicate or out-of-order epoch
//! would silently corrupt per-cycle stats.

use proptest::collection::vec;
use proptest::prelude::*;
use sc_net::SimDuration;
use sc_scenarios::{EventScript, LinkRef, NodeRef, ProviderSel, ScenarioEvent};

fn arb_dur() -> impl Strategy<Value = SimDuration> {
    (0u64..2_000_000).prop_map(SimDuration::from_micros)
}

fn arb_sel() -> impl Strategy<Value = ProviderSel> {
    prop_oneof![
        Just(ProviderSel::Primary),
        (0usize..4).prop_map(ProviderSel::Rank),
        (0usize..4).prop_map(ProviderSel::Index),
    ]
}

fn arb_link() -> impl Strategy<Value = LinkRef> {
    prop_oneof![
        arb_sel().prop_map(LinkRef::ProviderSwitch),
        arb_sel().prop_map(LinkRef::ProviderPath),
        (0usize..4).prop_map(LinkRef::ForwarderUplink),
        Just(LinkRef::RingCloser),
        (0usize..3).prop_map(LinkRef::ControllerSwitch),
    ]
}

fn arb_node() -> impl Strategy<Value = NodeRef> {
    prop_oneof![
        arb_sel().prop_map(NodeRef::Provider),
        (0usize..4).prop_map(NodeRef::Forwarder),
        (0usize..3).prop_map(NodeRef::Controller),
        Just(NodeRef::Switch),
    ]
}

fn arb_event() -> impl Strategy<Value = ScenarioEvent> {
    prop_oneof![
        (arb_link(), arb_dur()).prop_map(|(link, at)| ScenarioEvent::LinkDown { link, at }),
        (arb_link(), arb_dur()).prop_map(|(link, at)| ScenarioEvent::LinkUp { link, at }),
        (arb_link(), arb_dur(), arb_dur(), 1u32..4).prop_map(|(link, at, period, cycles)| {
            ScenarioEvent::LinkFlap {
                link,
                at,
                period,
                cycles,
            }
        }),
        (arb_node(), arb_dur()).prop_map(|(node, at)| ScenarioEvent::NodeCrash { node, at }),
        (arb_sel(), arb_dur(), arb_dur()).prop_map(|(provider, at, outage)| {
            ScenarioEvent::SessionReset {
                provider,
                at,
                outage,
            }
        }),
        (arb_sel(), arb_dur(), 1u32..50).prop_map(|(provider, at, count)| {
            ScenarioEvent::WithdrawBurst {
                provider,
                at,
                count,
            }
        }),
        (arb_sel(), arb_dur(), 1u32..50, 1u32..4, arb_dur()).prop_map(
            |(provider, at, count, cycles, period)| ScenarioEvent::ChurnBurst {
                provider,
                at,
                count,
                cycles,
                period,
            }
        ),
        (0usize..3, arb_dur())
            .prop_map(|(replica, at)| ScenarioEvent::CrashReplica { replica, at }),
        (0usize..3, arb_dur(), arb_dur()).prop_map(|(replica, at, delay)| {
            ScenarioEvent::DelayReplica { replica, at, delay }
        }),
        (
            arb_link(),
            arb_dur(),
            0u32..=1_000_000,
            0u32..=1_000_000,
            arb_dur()
        )
            .prop_map(|(link, at, loss_ppm, corrupt_ppm, extra)| {
                ScenarioEvent::SetLinkFaults {
                    link,
                    at,
                    loss_ppm,
                    corrupt_ppm,
                    until: at + extra + SimDuration::from_micros(1),
                }
            }),
        (arb_node(), arb_node(), arb_dur(), arb_dur()).prop_map(|(a, b, at, extra)| {
            ScenarioEvent::Partition {
                a,
                b,
                at,
                heal: at + extra + SimDuration::from_micros(1),
            }
        }),
        (0usize..3, arb_dur())
            .prop_map(|(replica, at)| ScenarioEvent::CrashController { replica, at }),
        (0usize..3, arb_dur())
            .prop_map(|(replica, at)| ScenarioEvent::RestartController { replica, at }),
        (1u32..8, arb_dur()).prop_map(|(count, at)| ScenarioEvent::DropFlowMods { count, at }),
    ]
}

proptest! {
    /// For any mix of events, the epoch list is strictly increasing
    /// (sorted AND deduplicated), bounded by `end()`, and non-empty.
    #[test]
    fn epochs_sorted_deduped_bounded(events in vec(arb_event(), 0..24)) {
        let script = EventScript::new("prop", events);
        let epochs = script.epochs();
        prop_assert!(!epochs.is_empty(), "windower needs at least one window");
        for pair in epochs.windows(2) {
            prop_assert!(pair[0] < pair[1], "epochs must be strictly sorted: {epochs:?}");
        }
        let end = script.end();
        for e in &epochs {
            prop_assert!(*e <= end || (script.events.is_empty() && *e == SimDuration::ZERO),
                "epoch {e:?} past end {end:?}");
        }
    }

    /// Scripts of arbitrary events survive the text round-trip exactly
    /// (parse ∘ display = identity), chaos grammar included.
    #[test]
    fn scripts_roundtrip(events in vec(arb_event(), 0..16)) {
        let script = EventScript::new("prop", events);
        let text = script.to_string();
        let parsed: EventScript = text.parse().unwrap();
        prop_assert_eq!(parsed, script);
    }
}
