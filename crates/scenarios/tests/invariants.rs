//! End-to-end tests of the convergence-invariant engine riding real
//! scenario trials: supercharged failover must *shrink* violation
//! windows relative to the legacy baseline (never widen them — even
//! with a controller replica crashing mid-failover), a no-failure
//! control cell must report zero violations, and invariant-annotated
//! stable reports must stay byte-identical across reruns and kernel
//! schedulers.

use sc_net::SimDuration;
use sc_scenarios::{
    run_scenario, run_suite, EventScript, Mode, ScenarioConfig, SuiteConfig, TopologySpec,
    ViolationClass,
};

/// Seconds-scale trial config with the invariant engine on.
fn inv_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        prefixes: 300,
        flows: 10,
        seed,
        invariants: true,
        ..ScenarioConfig::default()
    }
}

/// A flap slow enough for a full down→up→re-converge cycle at this
/// scale (the smoke-bench setting).
fn slow_flap() -> EventScript {
    EventScript::primary_flap(SimDuration::from_secs(3), 2)
}

#[test]
fn supercharged_shrinks_per_cycle_blackhole_windows() {
    for topo in [
        TopologySpec::Chain {
            providers: 2,
            hops: 1,
        },
        TopologySpec::IxpHub { peers: 3 },
    ] {
        let cfg = inv_cfg(42);
        let script = slow_flap();
        let leg = run_scenario(&topo, &script, Mode::Stock, &cfg);
        let sup = run_scenario(&topo, &script, Mode::Supercharged, &cfg);
        let (li, si) = (
            leg.invariants.as_ref().expect("engine was on"),
            sup.invariants.as_ref().expect("engine was on"),
        );
        assert_eq!(li.windows.len(), 2, "one window per flap cycle");
        assert_eq!(si.windows.len(), 2);
        for (w, (lw, sw)) in li.windows.iter().zip(&si.windows).enumerate() {
            let (l, s) = (
                lw.duration(ViolationClass::Blackhole),
                sw.duration(ViolationClass::Blackhole),
            );
            assert!(
                s < l,
                "{topo:?} cycle {w}: supercharged blackhole window {s} \
                 not shorter than legacy {l}"
            );
        }
        // The flap cuts a cable; nothing should ever cycle.
        assert_eq!(li.hits(ViolationClass::Loop), 0);
        assert_eq!(si.hits(ViolationClass::Loop), 0);
    }
}

#[test]
fn replica_crash_never_widens_any_violation_window() {
    // Cut the primary and crash the standby controller replica 2 ms
    // into the failover. In legacy mode the crash is a no-op (there are
    // no replicas), so the comparison isolates what replica divergence
    // costs the supercharged path: it must still never be worse than
    // the legacy baseline, per window and per class.
    let script = EventScript::replica_crash(1, SimDuration::from_millis(2));
    for topo in [
        TopologySpec::Fig4Lab,
        TopologySpec::Chain {
            providers: 2,
            hops: 1,
        },
        TopologySpec::IxpHub { peers: 3 },
    ] {
        let cfg = ScenarioConfig {
            controllers: 2,
            ..inv_cfg(7)
        };
        let leg = run_scenario(&topo, &script, Mode::Stock, &cfg);
        let sup = run_scenario(&topo, &script, Mode::Supercharged, &cfg);
        let (li, si) = (
            leg.invariants.as_ref().expect("engine was on"),
            sup.invariants.as_ref().expect("engine was on"),
        );
        assert_eq!(li.windows.len(), si.windows.len());
        for (w, (lw, sw)) in li.windows.iter().zip(&si.windows).enumerate() {
            for class in [
                ViolationClass::Blackhole,
                ViolationClass::Loop,
                ViolationClass::Transit,
            ] {
                assert!(
                    sw.duration(class) <= lw.duration(class),
                    "{topo:?} window {w} {class:?}: supercharged {} wider than legacy {}",
                    sw.duration(class),
                    lw.duration(class)
                );
            }
        }
    }
}

#[test]
fn no_failure_control_cell_reports_zero_violations() {
    // A script with no events measures one quiet window at the origin:
    // the engine must see every flow delivered at every sample — any
    // hit here would be a false positive in the walker itself.
    let script = EventScript::new("none", vec![]);
    let topo = TopologySpec::Chain {
        providers: 2,
        hops: 1,
    };
    for mode in [Mode::Stock, Mode::Supercharged] {
        let cfg = inv_cfg(42);
        let out = run_scenario(&topo, &script, mode, &cfg);
        let inv = out.invariants.as_ref().expect("engine was on");
        assert!(inv.samples() > 0, "the engine must actually have sampled");
        for class in [
            ViolationClass::Blackhole,
            ViolationClass::Loop,
            ViolationClass::Transit,
        ] {
            assert_eq!(
                inv.hits(class),
                0,
                "{mode:?}: false-positive {class:?} hits on a quiet network"
            );
        }
    }
}

#[test]
fn invariant_reports_are_byte_identical_across_reruns_and_schedulers() {
    let suite = |scheduler| SuiteConfig {
        topologies: vec![TopologySpec::Chain {
            providers: 2,
            hops: 1,
        }],
        scripts: vec![EventScript::replica_crash(1, SimDuration::from_millis(2))],
        modes: vec![Mode::Stock, Mode::Supercharged],
        base: ScenarioConfig {
            controllers: 2,
            scheduler,
            ..inv_cfg(42)
        },
        workers: Some(2),
    };
    let wheel = suite(sc_sim::SchedulerKind::TimerWheel);
    let a = run_suite(&wheel);
    let b = run_suite(&wheel);
    assert!(a.errors.is_empty(), "{:?}", a.errors);
    assert_eq!(
        a.to_csv_stable(),
        b.to_csv_stable(),
        "stable CSV must be byte-identical across reruns"
    );
    assert_eq!(a.to_json_stable(), b.to_json_stable());
    let heap = run_suite(&suite(sc_sim::SchedulerKind::ReferenceHeap));
    assert_eq!(
        a.to_csv_stable(),
        heap.to_csv_stable(),
        "stable CSV must not depend on the kernel scheduler"
    );
    assert_eq!(a.to_json_stable(), heap.to_json_stable());
    // The instrumented rows actually carry invariant columns (a quiet
    // regression would be all-blank cells passing the diffs above).
    let header = a.to_csv_stable();
    let header = header.lines().next().unwrap();
    assert!(header.contains("viol_blackhole_us"));
    for row in &a.rows {
        assert!(row.invariants.is_some());
    }
}
