//! End-to-end MRT replay through the scenario engine: the committed
//! fixtures seed the provider tables, the recorded update trace plays
//! through the kernel scheduler with warped inter-arrival timing, and
//! every burst is measured in its own convergence window.

use sc_lab::Mode;
use sc_net::SimDuration;
use sc_scenarios::{
    build_scenario, run_scenario, EventScript, FeedSource, MrtReplayFeed, ScenarioConfig,
    SuiteReport, TopologySpec,
};

fn fixture(name: &str) -> Vec<u8> {
    let path = format!("{}/../../tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// The fixture feed, warped 4x faster. At 0.25x the recorded
/// inter-burst quiet gaps (>= 200 ms) stay above the 40 ms epoch
/// threshold while intra-burst gaps (microseconds) stay far below it,
/// so epoch detection recovers exactly the 24 recorded bursts.
fn replay_feed() -> FeedSource {
    let mut feed = MrtReplayFeed::new(fixture("ris_rib.mrt"), fixture("ris_updates.mrt"));
    feed.time_scale = "0.25".parse().unwrap();
    feed.epoch_quiet = SimDuration::from_millis(40);
    FeedSource::MrtReplay(feed)
}

fn replay_cfg() -> ScenarioConfig {
    ScenarioConfig {
        flows: 8,
        rate_pps: Some(2_000),
        feed: replay_feed(),
        ..ScenarioConfig::default()
    }
}

const TOPO: TopologySpec = TopologySpec::Chain {
    providers: 2,
    hops: 1,
};

#[test]
fn mrt_feed_seeds_tables_with_rewritten_next_hops() {
    // Table-only feed (no timed trace).
    let feed = FeedSource::MrtReplay(MrtReplayFeed::new(fixture("ris_rib.mrt"), Vec::new()));
    let cfg = ScenarioConfig {
        flows: 4,
        feed,
        ..ScenarioConfig::default()
    };
    let scn = build_scenario(&TOPO, Mode::Stock, &cfg);
    // The snapshot's 256 prefixes override the configured table size.
    assert_eq!(scn.universe.len(), 256);
    assert_eq!(scn.cfg.prefixes, 256);
    assert_eq!(scn.replay_peers.len(), 2);
    for (i, feed) in scn.feeds.iter().enumerate() {
        let nlri: usize = feed.iter().map(|u| u.nlri.len()).sum();
        assert_eq!(nlri, 256, "provider {i} announces the full snapshot");
        assert!(
            feed.iter()
                .all(|u| u.attrs.as_ref().unwrap().next_hop == scn.provider_ips[i]),
            "provider {i} next-hops rewritten to its own address"
        );
        // Recorded attribute runs still share one Arc per run.
        let distinct: std::collections::HashSet<*const sc_bgp::attrs::RouteAttrs> = feed
            .iter()
            .map(|u| std::sync::Arc::as_ptr(u.attrs.as_ref().unwrap()))
            .collect();
        assert!(distinct.len() * 4 < nlri, "attribute sharing survived");
    }
}

#[test]
fn replay_trial_measures_every_recorded_burst() {
    let cfg = replay_cfg();
    let script = EventScript::new("replay-only", Vec::new());
    let legacy = run_scenario(&TOPO, &script, Mode::Stock, &cfg);
    assert_eq!(legacy.prefixes, 256, "snapshot-sized table in the report");
    assert_eq!(
        legacy.cycles.len(),
        24,
        "one measurement window per recorded burst"
    );
    assert_eq!(legacy.unrecovered, 0, "every flow recovered by the end");
    assert!(legacy.per_flow.iter().all(|g| !g.is_zero()));

    // The supercharged path digests the same replay (provider updates
    // flow through the controller and on to R1).
    let sup = run_scenario(&TOPO, &script, Mode::Supercharged, &cfg);
    assert_eq!(sup.cycles.len(), 24);
    assert_eq!(sup.unrecovered, 0);
}

/// Replay is deterministic: identical trials produce byte-identical
/// stable report rows, and the scheduler kind (timer wheel vs reference
/// heap) cannot change them — replay events enter through the same
/// kernel `Scheduler` as everything else.
#[test]
fn replay_is_deterministic_and_scheduler_invariant() {
    let script = EventScript::new("replay-only", Vec::new());
    let row = |cfg: &ScenarioConfig| {
        let outcome = run_scenario(&TOPO, &script, Mode::Stock, cfg);
        SuiteReport::row_json_stable(&outcome).to_string()
    };
    let base = replay_cfg();
    let again = row(&base);
    assert_eq!(row(&base), again, "two identical runs, identical rows");
    let heap = ScenarioConfig {
        scheduler: sc_sim::SchedulerKind::ReferenceHeap,
        ..replay_cfg()
    };
    assert_eq!(row(&heap), again, "scheduler choice is invisible");
}

/// A failure script composes with a replay feed: scripted epochs and
/// replay epochs merge into one window schedule.
#[test]
fn script_epochs_merge_with_replay_epochs() {
    let cfg = replay_cfg();
    // Cut the primary's cable mid-trace (between bursts, so the count
    // grows by exactly one window).
    let script = EventScript::new(
        "mid-replay-cut",
        vec![sc_scenarios::ScenarioEvent::LinkDown {
            link: sc_scenarios::LinkRef::ProviderSwitch(sc_scenarios::ProviderSel::Primary),
            at: SimDuration::from_millis(205),
        }],
    );
    let outcome = run_scenario(&TOPO, &script, Mode::Stock, &cfg);
    assert_eq!(outcome.cycles.len(), 25, "24 bursts + 1 scripted cut");
    assert_eq!(outcome.unrecovered, 0, "backup provider carries the rest");
}
