//! End-to-end scenario-engine tests: the generic topologies really
//! converge, supercharging wins on every shape, Fig. 4 delegation is
//! faithful to the lab, and suite reports are deterministic.

use sc_lab::Mode;
use sc_net::SimDuration;
use sc_scenarios::{
    run_scenario, run_suite, EventScript, LinkRef, ScenarioConfig, ScenarioEvent, SuiteConfig,
    TopologySpec,
};

/// A test-local monotonic clock (tests sit outside the `no-wall-clock`
/// boundary; production worlds get `sc_bench::timing::wall_clock`).
fn test_wall_clock() -> std::time::Duration {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH.get_or_init(std::time::Instant::now).elapsed()
}

fn small(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        prefixes: 300,
        flows: 10,
        seed,
        ..ScenarioConfig::default()
    }
}

/// The headline claim, beyond the paper's topology: supercharged
/// convergence beats the legacy walk on the chain and the IXP hub.
#[test]
fn supercharged_beats_legacy_on_chain_and_ixp() {
    let script = EventScript::primary_cut();
    for topo in [
        TopologySpec::Chain {
            providers: 2,
            hops: 2,
        },
        TopologySpec::IxpHub { peers: 4 },
    ] {
        let legacy = run_scenario(&topo, &script, Mode::Stock, &small(7));
        let sup = run_scenario(&topo, &script, Mode::Supercharged, &small(7));
        assert_eq!(
            legacy.unrecovered,
            0,
            "{}: legacy flows recovered",
            topo.label()
        );
        assert_eq!(
            sup.unrecovered,
            0,
            "{}: supercharged flows recovered",
            topo.label()
        );
        assert!(
            sup.stats().median < legacy.stats().median,
            "{}: supercharged {} !< legacy {}",
            topo.label(),
            sup.stats().median,
            legacy.stats().median
        );
        assert!(sup.flow_rewrites.is_some(), "failover plan was issued");
        assert!(legacy.detected_at.is_some() && sup.detected_at.is_some());
    }
}

/// Full flap recovery — the repeated-convergence regime the paper's
/// comparison is most interesting in. With RFC 4271 restart modeled
/// (session re-establish + Adj-RIB-Out replay), the SECOND flap cycle
/// is a real convergence event: both modes recover it with zero
/// unrecovered flows, every cycle is a genuine failover (not the
/// near-zero gap of an already-bypassed link), and supercharging beats
/// legacy on every cycle.
#[test]
fn second_flap_cycle_recovers_on_chain_and_ixp() {
    let script = EventScript::primary_flap(SimDuration::from_secs(6), 2);
    for topo in [
        TopologySpec::Chain {
            providers: 2,
            hops: 2,
        },
        TopologySpec::IxpHub { peers: 4 },
    ] {
        let legacy = run_scenario(&topo, &script, Mode::Stock, &small(7));
        let sup = run_scenario(&topo, &script, Mode::Supercharged, &small(7));
        for (label, out) in [("legacy", &legacy), ("supercharged", &sup)] {
            assert_eq!(
                out.cycles.len(),
                2,
                "{}: {label}: one window per flap cycle",
                topo.label()
            );
            for (c, cycle) in out.cycles.iter().enumerate() {
                assert_eq!(
                    cycle.unrecovered,
                    0,
                    "{}: {label}: cycle {c} fully recovers",
                    topo.label()
                );
                // Each cycle is a real failover: at least a BFD
                // detection's worth of gap, not the nominal inter-packet
                // gap a dead (never re-advertised) flap would show.
                assert!(
                    cycle.stats().median >= SimDuration::from_millis(50),
                    "{}: {label}: cycle {c} is a real convergence event, median {}",
                    topo.label(),
                    cycle.stats().median
                );
            }
        }
        for c in 0..2 {
            assert!(
                sup.cycles[c].stats().median < legacy.cycles[c].stats().median,
                "{}: cycle {c}: supercharged {} !< legacy {}",
                topo.label(),
                sup.cycles[c].stats().median,
                legacy.cycles[c].stats().median
            );
        }
    }
}

/// Fig. 4 delegation is faithful: running the scenario engine on the
/// paper topology reproduces `run_convergence_trial` exactly.
#[test]
fn fig4_delegation_matches_the_lab() {
    let cfg = small(42);
    let scenario = run_scenario(
        &TopologySpec::Fig4Lab,
        &EventScript::primary_cut(),
        Mode::Supercharged,
        &cfg,
    );
    let lab = sc_lab::run_convergence_trial(sc_lab::LabConfig {
        mode: Mode::Supercharged,
        prefixes: cfg.prefixes,
        flows: cfg.flows,
        seed: cfg.seed,
        ..sc_lab::LabConfig::default()
    });
    assert_eq!(scenario.per_flow, lab.per_flow);
    assert_eq!(scenario.detected_at, lab.detected_at);
    assert_eq!(scenario.rate_pps, lab.rate_pps);
}

/// Cutting the routeless ring-closing arc is the null failure: no flow
/// may see more than a nominal gap.
#[test]
fn ring_closer_cut_is_harmless() {
    let script = EventScript::new(
        "null-cut",
        vec![ScenarioEvent::LinkDown {
            link: LinkRef::RingCloser,
            at: SimDuration::ZERO,
        }],
    );
    let topo = TopologySpec::Ring {
        providers: 2,
        ring: 4,
    };
    for mode in [Mode::Stock, Mode::Supercharged] {
        let out = run_scenario(&topo, &script, mode, &small(3));
        assert_eq!(out.unrecovered, 0);
        assert!(
            out.stats().max < SimDuration::from_millis(50),
            "null cut must not disturb traffic, saw {}",
            out.stats().max
        );
    }
}

/// A withdraw burst over a live session moves the affected flows to
/// the backup without breaking the rest.
#[test]
fn withdraw_burst_converges_without_link_failure() {
    let topo = TopologySpec::IxpHub { peers: 3 };
    let script = EventScript::withdraw_burst(150);
    for mode in [Mode::Stock, Mode::Supercharged] {
        let out = run_scenario(&topo, &script, mode, &small(5));
        assert_eq!(
            out.unrecovered,
            0,
            "{}: all flows recover",
            sc_scenarios::mode_label(mode)
        );
        // No carrier event: BFD never fires.
        assert!(out.detected_at.is_none());
    }
}

/// One bad trial must not abort the suite: the panic is caught,
/// surfaced as an error row (CSV and JSON), streamed to the observer,
/// and every other trial still completes.
#[test]
fn suite_survives_a_panicking_trial() {
    let suite = SuiteConfig {
        topologies: vec![TopologySpec::Chain {
            providers: 2,
            hops: 1,
        }],
        scripts: vec![
            EventScript::primary_cut(),
            // A chain has no ring-closing arc: applying this script
            // panics inside the trial.
            EventScript::new(
                "bad-target",
                vec![ScenarioEvent::LinkDown {
                    link: LinkRef::RingCloser,
                    at: SimDuration::ZERO,
                }],
            ),
        ],
        modes: vec![Mode::Stock],
        workers: None,
        base: ScenarioConfig {
            prefixes: 100,
            flows: 3,
            seed: 9,
            ..ScenarioConfig::default()
        },
    };
    let streamed = std::sync::Mutex::new(Vec::new());
    let report = sc_scenarios::run_suite_with(&suite, |i, result| {
        streamed
            .lock()
            .unwrap()
            .push((i, matches!(result, sc_scenarios::TrialResult::Ok(_))));
    });
    assert_eq!(report.rows.len(), 1, "the good trial completed");
    assert_eq!(report.errors.len(), 1, "the bad trial became an error row");
    assert_eq!(report.errors[0].script, "bad-target");
    assert!(
        report.errors[0].error.contains("ring closer"),
        "panic message preserved: {}",
        report.errors[0].error
    );
    // Both trials streamed, each exactly once, with their matrix index.
    let mut seen = streamed.into_inner().unwrap();
    seen.sort_unstable();
    assert_eq!(seen, vec![(0, true), (1, false)]);
    // The reports carry the error row.
    let csv = report.to_csv();
    assert!(csv.lines().next().unwrap().ends_with(",error"));
    assert!(csv.contains("bad-target"));
    assert!(report.to_json().contains(r#""errors":[{"topology":"#));
}

/// Same seed ⇒ byte-identical suite reports; a different seed moves
/// the (jittered) measurements.
#[test]
fn suite_json_is_deterministic_from_seed() {
    let suite = SuiteConfig {
        topologies: vec![
            TopologySpec::Chain {
                providers: 2,
                hops: 1,
            },
            TopologySpec::IxpHub { peers: 3 },
        ],
        scripts: vec![EventScript::primary_cut()],
        modes: vec![Mode::Stock, Mode::Supercharged],
        workers: None,
        base: ScenarioConfig {
            prefixes: 200,
            flows: 5,
            seed: 11,
            // Worlds only record the wall-clock perf column when the
            // shell injects a clock (the kernel itself is clock-free).
            wall_clock: Some(test_wall_clock),
            ..ScenarioConfig::default()
        },
    };
    let a = run_suite(&suite);
    let b = run_suite(&suite);
    assert_eq!(
        a.to_json_stable(),
        b.to_json_stable(),
        "same seed, same bytes"
    );
    assert_eq!(a.to_csv_stable(), b.to_csv_stable());
    assert_eq!(a.rows.len(), 4);
    // The full variants differ only in the wall-clock perf field; the
    // deterministic event count is part of the stable contract.
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.events_processed, rb.events_processed);
        assert!(ra.events_per_sec > 0, "perf trajectory recorded");
    }

    let mut other = suite.clone();
    other.base.seed = 12;
    let c = run_suite(&other);
    assert_ne!(
        a.to_json_stable(),
        c.to_json_stable(),
        "different seed, different bytes"
    );

    // Every supercharged row beats its legacy twin.
    for (topo, script, x) in a.speedups() {
        assert!(x > 1.0, "{topo}/{script}: speedup {x}");
    }
}

/// The worker-pool size is a scheduling detail: 1 worker and N workers
/// must produce byte-identical stable reports (rows land by matrix
/// slot, each world is a pure function of its seed).
#[test]
fn worker_count_does_not_change_the_report() {
    let base = SuiteConfig {
        topologies: vec![TopologySpec::Chain {
            providers: 2,
            hops: 1,
        }],
        scripts: vec![EventScript::primary_cut()],
        modes: vec![Mode::Stock, Mode::Supercharged],
        workers: Some(1),
        base: ScenarioConfig {
            prefixes: 200,
            flows: 5,
            seed: 7,
            ..ScenarioConfig::default()
        },
    };
    let serial = run_suite(&base);
    let mut wide = base.clone();
    wide.workers = Some(4);
    let parallel = run_suite(&wide);
    assert_eq!(serial.to_json_stable(), parallel.to_json_stable());
    assert_eq!(serial.to_csv_stable(), parallel.to_csv_stable());
}

/// The timer wheel is a pure scheduling structure: running the same
/// smoke-shaped suite on the reference `BinaryHeap` scheduler must
/// produce byte-identical stable reports — the wheel preserves the
/// exact `(time, seq)` total order, so not even the kernel event count
/// may move.
#[test]
fn timer_wheel_matches_reference_heap_byte_for_byte() {
    let wheel = SuiteConfig {
        topologies: vec![
            TopologySpec::Chain {
                providers: 2,
                hops: 1,
            },
            TopologySpec::IxpHub { peers: 3 },
        ],
        scripts: vec![
            EventScript::primary_cut(),
            EventScript::primary_flap(SimDuration::from_secs(3), 2),
        ],
        modes: vec![Mode::Stock, Mode::Supercharged],
        workers: None,
        base: ScenarioConfig {
            prefixes: 200,
            flows: 5,
            seed: 17,
            scheduler: sc_sim::SchedulerKind::TimerWheel,
            ..ScenarioConfig::default()
        },
    };
    let mut heap = wheel.clone();
    heap.base.scheduler = sc_sim::SchedulerKind::ReferenceHeap;
    let on_wheel = run_suite(&wheel);
    let on_heap = run_suite(&heap);
    assert_eq!(
        on_wheel.to_json_stable(),
        on_heap.to_json_stable(),
        "wheel vs reference heap: identical measurements"
    );
    assert_eq!(on_wheel.to_csv_stable(), on_heap.to_csv_stable());
    for (a, b) in on_wheel.rows.iter().zip(&on_heap.rows) {
        assert_eq!(a.events_processed, b.events_processed, "same event stream");
    }
}

/// Resuming from a truncated `--jsonl` report runs exactly the missing
/// cells and reproduces their rows byte-identically.
#[test]
fn resume_skips_completed_cells_and_reproduces_rows() {
    let suite = SuiteConfig {
        topologies: vec![TopologySpec::Chain {
            providers: 2,
            hops: 1,
        }],
        scripts: vec![EventScript::primary_cut()],
        modes: vec![Mode::Stock, Mode::Supercharged],
        workers: Some(1),
        base: ScenarioConfig {
            prefixes: 150,
            flows: 4,
            seed: 23,
            ..ScenarioConfig::default()
        },
    };
    let full = run_suite(&suite);
    assert_eq!(full.rows.len(), 2);
    // Prior report: first row complete, second row truncated mid-write.
    let row0 = sc_scenarios::SuiteReport::row_json_stable(&full.rows[0]).to_string();
    let row1 = sc_scenarios::SuiteReport::row_json_stable(&full.rows[1]).to_string();
    let prior = format!("{row0}\n{}", &row1[..row1.len() / 2]);
    let completed = sc_scenarios::parse_completed_cells(&prior);
    assert_eq!(completed.len(), 1, "truncated row is not completed");
    let streamed = std::sync::atomic::AtomicUsize::new(0);
    let resumed = sc_scenarios::run_suite_resume(&suite, &completed, |_, _| {
        streamed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(streamed.into_inner(), 1, "only the missing cell ran");
    assert_eq!(resumed.rows.len(), 1);
    assert_eq!(
        sc_scenarios::SuiteReport::row_json_stable(&resumed.rows[0]).to_string(),
        row1,
        "resumed cell reproduces the original row"
    );
    // Resuming from a complete report runs nothing.
    let all = sc_scenarios::parse_completed_cells(&format!("{row0}\n{row1}\n"));
    let nothing = sc_scenarios::run_suite_resume(&suite, &all, |_, _| {
        panic!("no cell should run");
    });
    assert!(nothing.rows.is_empty() && nothing.errors.is_empty());
    // A prior report from a *different* configuration must not be
    // trusted: same cells, different seed ⇒ everything re-runs.
    let mut reseeded = suite.clone();
    reseeded.base.seed = 24;
    let rerun = sc_scenarios::run_suite_resume(&reseeded, &all, |_, _| {});
    assert_eq!(rerun.rows.len(), 2, "config mismatch re-runs every cell");
}

/// The forwarding flow cache is a pure memo: disabling it (every packet
/// takes the LPM slow path) must leave every convergence number — and
/// even the kernel event count — byte-identical.
#[test]
fn flow_cache_never_changes_forwarding_decisions() {
    let cached = SuiteConfig {
        topologies: vec![TopologySpec::Chain {
            providers: 2,
            hops: 1,
        }],
        scripts: vec![
            EventScript::primary_cut(),
            EventScript::primary_flap(sc_net::SimDuration::from_secs(3), 2),
        ],
        modes: vec![Mode::Stock, Mode::Supercharged],
        workers: None,
        base: ScenarioConfig {
            prefixes: 200,
            flows: 5,
            seed: 21,
            flow_cache: true,
            ..ScenarioConfig::default()
        },
    };
    let mut bypass = cached.clone();
    bypass.base.flow_cache = false;
    let with_cache = run_suite(&cached);
    let without = run_suite(&bypass);
    assert_eq!(
        with_cache.to_json_stable(),
        without.to_json_stable(),
        "cache on vs. bypass: identical measurements"
    );
    assert_eq!(with_cache.to_csv_stable(), without.to_csv_stable());
    for (a, b) in with_cache.rows.iter().zip(&without.rows) {
        assert_eq!(a.events_processed, b.events_processed, "same event stream");
    }
}
