//! Sharded-kernel determinism over the scenario engine: for random
//! topologies, seeds, and shard counts, a trial run on the parallel
//! `Sharded` scheduler must produce a stable report byte-identical to
//! the serial `ReferenceHeap` oracle. Event keys are a pure function of
//! the emitting state machine (origin-tagged sequence numbers), so not
//! even the kernel event count may move — the conservative-lookahead
//! windows only change *when* work happens on the wall clock, never
//! *what* happens in virtual time.

use proptest::prelude::*;
use sc_lab::Mode;
use sc_net::SimDuration;
use sc_scenarios::{
    build_scenario, run_scenario, EventScript, ScenarioConfig, SuiteReport, TopologySpec,
};
use sc_sim::SchedulerKind;

fn tiny(seed: u64, scheduler: SchedulerKind) -> ScenarioConfig {
    ScenarioConfig {
        prefixes: 120,
        flows: 4,
        seed,
        scheduler,
        ..ScenarioConfig::default()
    }
}

/// One trial, rendered as its byte-reproducible stable JSON row.
fn stable_row(topo: &TopologySpec, mode: Mode, cfg: &ScenarioConfig) -> String {
    let out = run_scenario(topo, &EventScript::primary_cut(), mode, cfg);
    format!(
        "{} events={}",
        SuiteReport::row_json_stable(&out),
        out.events_processed
    )
}

fn arb_topo() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        (2usize..4, 1usize..3)
            .prop_map(|(providers, hops)| TopologySpec::Chain { providers, hops }),
        (3usize..6).prop_map(|peers| TopologySpec::IxpHub { peers }),
        (1usize..3).prop_map(|half| TopologySpec::FatTreePod { k: half * 2 }),
        (0u64..1_000).prop_map(|seed| TopologySpec::Random { seed }),
    ]
}

proptest! {
    // Each case runs two full trials; keep the count modest — the
    // deterministic seed floor below pins the corners regardless.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The hard determinism contract, property-tested: any topology ×
    /// seed × shard count × mode matches the reference heap byte for
    /// byte.
    #[test]
    fn sharded_matches_reference_heap(
        topo in arb_topo(),
        seed in 1u64..1_000,
        shards in 1usize..6,
        supercharged in any::<bool>(),
    ) {
        let mode = if supercharged { Mode::Supercharged } else { Mode::Stock };
        let sharded = stable_row(&topo, mode, &tiny(seed, SchedulerKind::Sharded { shards }));
        let heap = stable_row(&topo, mode, &tiny(seed, SchedulerKind::ReferenceHeap));
        prop_assert_eq!(sharded, heap, "{topo:?} seed={seed} shards={shards}");
    }
}

/// The named corners the issue calls out — chain, fat-tree pod, IXP hub
/// — pinned outside proptest so a regression names the exact shape.
#[test]
fn named_topologies_are_shard_invariant() {
    for topo in [
        TopologySpec::Chain {
            providers: 2,
            hops: 2,
        },
        TopologySpec::FatTreePod { k: 4 },
        TopologySpec::IxpHub { peers: 4 },
    ] {
        let heap = stable_row(
            &topo,
            Mode::Supercharged,
            &tiny(11, SchedulerKind::ReferenceHeap),
        );
        for shards in [2usize, 3, 8] {
            let sharded = stable_row(
                &topo,
                Mode::Supercharged,
                &tiny(11, SchedulerKind::Sharded { shards }),
            );
            assert_eq!(sharded, heap, "{topo:?} shards={shards}");
        }
    }
}

/// The conservative lookahead horizon the builder's shard map induces:
/// every provider's 10 µs LAN link to the switch becomes a cross-shard
/// edge (providers round-robin over shards, the switch stays on shard
/// 0), and nothing in the wiring is faster — so the safe window is
/// exactly that latency. One shard (or a serial scheduler) has no
/// cross-shard edges and therefore no horizon.
#[test]
fn lookahead_horizon_is_the_min_cross_shard_latency() {
    let lan = SimDuration::from_micros(10);
    for topo in [
        TopologySpec::Chain {
            providers: 2,
            hops: 2,
        },
        TopologySpec::FatTreePod { k: 4 },
        TopologySpec::IxpHub { peers: 4 },
    ] {
        let scn = build_scenario(
            &topo,
            Mode::Supercharged,
            &tiny(7, SchedulerKind::Sharded { shards: 2 }),
        );
        assert_eq!(
            scn.world.lookahead(),
            Some(lan),
            "{topo:?}: horizon = provider LAN latency"
        );
        // The builder round-robins providers over shards.
        assert_eq!(scn.world.shard_of(scn.providers[0]), 0, "{topo:?}");
        assert_eq!(scn.world.shard_of(scn.providers[1]), 1, "{topo:?}");

        let single = build_scenario(
            &topo,
            Mode::Supercharged,
            &tiny(7, SchedulerKind::Sharded { shards: 1 }),
        );
        assert_eq!(single.world.lookahead(), None, "{topo:?}: one shard");

        let serial = build_scenario(
            &topo,
            Mode::Supercharged,
            &tiny(7, SchedulerKind::TimerWheel),
        );
        assert_eq!(serial.world.lookahead(), None, "{topo:?}: serial kernel");
    }
}
