//! End-to-end trace determinism and phase-reconstruction contract.
//!
//! The flight recorder is part of the byte-identical determinism
//! surface: a traced trial must export the same JSONL, Chrome JSON and
//! metrics registry on every rerun and on every scheduler — reference
//! heap, timer wheel, and the sharded kernel at any shard count. And
//! the causal phase columns it feeds must *partition* the measured
//! convergence: detect + notify + program + fib equals the cycle's
//! worst per-flow gap exactly, in both legacy and supercharged mode.

use sc_lab::Mode;
use sc_net::SimDuration;
use sc_scenarios::{
    run_scenario_traced, EventScript, ScenarioConfig, SuiteReport, TopologySpec, TraceArtifacts,
};
use sc_scenarios::{ScenarioOutcome, SuiteConfig};
use sc_sim::SchedulerKind;

fn traced(seed: u64, scheduler: SchedulerKind) -> ScenarioConfig {
    ScenarioConfig {
        prefixes: 300,
        flows: 10,
        seed,
        scheduler,
        trace: true,
        ..ScenarioConfig::default()
    }
}

fn run(
    topo: &TopologySpec,
    script: &EventScript,
    mode: Mode,
    cfg: &ScenarioConfig,
) -> (ScenarioOutcome, TraceArtifacts) {
    let (out, art) = run_scenario_traced(topo, script, mode, cfg);
    (out, art.expect("trace was enabled"))
}

/// The opening cycle must carry a phase breakdown, and wherever a
/// breakdown exists its four phases must sum exactly to that cycle's
/// measured convergence. (Later flap cycles may legitimately have no
/// breakdown: a cut that lands while BFD is still bootstrapping back
/// produces no detection event, and recovery comes from the scripted
/// restore — a blank is honest there.)
fn assert_phases_partition(out: &ScenarioOutcome, label: &str) {
    assert!(
        out.cycles[0].phases.is_some(),
        "{label}: opening cycle has no phase breakdown"
    );
    let mut seen = 0;
    for (i, c) in out.cycles.iter().enumerate() {
        let Some(p) = &c.phases else { continue };
        let conv = c
            .per_flow
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO);
        assert_eq!(
            p.total(),
            conv,
            "{label}: cycle {i} phases must partition the measured convergence"
        );
        assert!(
            p.detect > SimDuration::ZERO,
            "{label}: cycle {i} detection cannot be instantaneous"
        );
        seen += 1;
    }
    assert!(seen > 0, "{label}: no cycle with a breakdown to check");
}

/// The chain + IXP flap cells from the issue: phase breakdowns must be
/// emitted and exact for both modes.
#[test]
fn phase_breakdowns_partition_measured_convergence() {
    let cfg = traced(7, SchedulerKind::TimerWheel);
    let flap = EventScript::primary_flap(SimDuration::from_millis(400), 2);
    for topo in [
        TopologySpec::Chain {
            providers: 2,
            hops: 1,
        },
        TopologySpec::IxpHub { peers: 3 },
    ] {
        for mode in [Mode::Stock, Mode::Supercharged] {
            let (out, art) = run(&topo, &flap, mode, &cfg);
            let label = format!("{topo:?}/{mode:?}");
            assert_phases_partition(&out, &label);
            // The supercharged path must show actual programming work.
            if mode == Mode::Supercharged {
                assert!(
                    art.jsonl.contains("flowmod.batch"),
                    "{label}: no flow-mod spans in trace"
                );
            }
            assert!(art.jsonl.contains("\"cat\":\"detect\""), "{label}");
            assert!(art.chrome.contains("traceEvents"), "{label}");
            assert!(art.metrics_json.contains("counters"), "{label}");
        }
    }
}

/// Stable CSV rows from a traced suite carry populated phase columns.
#[test]
fn stable_csv_carries_phase_columns() {
    let cfg = traced(7, SchedulerKind::TimerWheel);
    let topo = TopologySpec::Chain {
        providers: 2,
        hops: 1,
    };
    let suite = SuiteConfig {
        topologies: vec![topo],
        scripts: vec![EventScript::primary_cut()],
        modes: vec![Mode::Stock, Mode::Supercharged],
        base: cfg,
        ..SuiteConfig::default_matrix()
    };
    let report = sc_scenarios::run_suite(&suite);
    let csv = report.to_csv_stable();
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().unwrap().split(',').collect();
    for col in ["detect_us", "notify_us", "program_us", "fib_us"] {
        assert!(header.contains(&col), "missing column {col}");
    }
    let detect_ix = header.iter().position(|c| *c == "detect_us").unwrap();
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert!(
            !fields[detect_ix].is_empty(),
            "phase column empty in traced row: {line}"
        );
        let v: u64 = fields[detect_ix]
            .split(';')
            .next()
            .unwrap()
            .parse()
            .expect("detect_us must be numeric");
        assert!(v > 0, "zero detection phase: {line}");
    }
    // JSON side too: per-cycle phase fields appear on traced rows.
    let json = report.to_json_stable();
    for key in ["detect_ns", "notify_ns", "program_ns", "fib_ns"] {
        assert!(json.contains(key), "missing {key} in stable JSON");
    }
}

/// The hard export contract: trace exports (JSONL + Chrome) and the
/// stable report row are byte-identical across reruns and across all
/// three scheduler families at several shard counts. The metrics
/// registry is byte-identical too — once the sharded kernel's
/// `kernel.*` self-metrics (window counts, active-shard occupancy)
/// are set aside: those describe the execution engine, not the
/// simulated network, and exist only on the scheduler that has them.
#[test]
fn trace_exports_are_scheduler_invariant() {
    let topo = TopologySpec::Chain {
        providers: 2,
        hops: 1,
    };
    let script = EventScript::primary_cut();
    let render = |art: &TraceArtifacts, out: &ScenarioOutcome| {
        format!(
            "{}\n{}\n{}",
            art.jsonl,
            art.chrome,
            SuiteReport::row_json_stable(out)
        )
    };
    for mode in [Mode::Stock, Mode::Supercharged] {
        let (ref_out, ref_art) = run(
            &topo,
            &script,
            mode,
            &traced(11, SchedulerKind::ReferenceHeap),
        );
        let reference = render(&ref_art, &ref_out);
        assert!(ref_art.jsonl.lines().count() > 10, "{mode:?}: trace empty");

        // Rerun: every artifact byte-identical, metrics included.
        let (out2, art2) = run(
            &topo,
            &script,
            mode,
            &traced(11, SchedulerKind::ReferenceHeap),
        );
        assert_eq!(render(&art2, &out2), reference, "{mode:?}: rerun differs");
        assert_eq!(
            art2.metrics_json, ref_art.metrics_json,
            "{mode:?}: rerun metrics differ"
        );

        for sched in [
            SchedulerKind::TimerWheel,
            SchedulerKind::Sharded { shards: 2 },
            SchedulerKind::Sharded { shards: 4 },
        ] {
            let (out, art) = run(&topo, &script, mode, &traced(11, sched));
            assert_eq!(
                render(&art, &out),
                reference,
                "{mode:?}/{sched:?}: trace export diverged from reference heap"
            );
            // Sharded reruns must reproduce even the kernel
            // self-metrics byte for byte.
            let (_, again) = run(&topo, &script, mode, &traced(11, sched));
            assert_eq!(
                again.metrics_json, art.metrics_json,
                "{mode:?}/{sched:?}: metrics not rerun-stable"
            );
            // And the simulated-domain counters in them must match the
            // reference: every reference counter appears verbatim.
            for entry in ref_art
                .metrics_json
                .trim_start_matches("{\"counters\":{")
                .split(['{', '}'])
                .next()
                .unwrap_or_default()
                .split(',')
                .filter(|e| !e.is_empty())
            {
                assert!(
                    art.metrics_json.contains(entry),
                    "{mode:?}/{sched:?}: domain counter {entry} diverged"
                );
            }
        }
    }
}
