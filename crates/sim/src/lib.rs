//! Deterministic discrete-event network simulation kernel.
//!
//! The paper's evaluation is a hardware lab; this crate is the substrate
//! that replaces it. Design follows the event-driven, poll-based
//! architecture of the networking guides (smoltcp): **no threads, no
//! wall-clock, no hidden state** — a single ordered event queue over
//! virtual time ([`sc_net::SimTime`]), so every experiment is exactly
//! reproducible from its seed.
//!
//! * [`node::Node`] — anything attached to the network (router, switch,
//!   controller, traffic source/sink). Nodes react to frames, timers and
//!   link status changes through a [`node::Ctx`] that collects actions.
//! * [`link`] — point-to-point links with latency, optional bandwidth
//!   (serialization + FIFO queueing), probabilistic loss and corruption
//!   (fault injection, as the guides' examples recommend).
//! * [`world::World`] — the kernel: owns nodes, links, the event queue
//!   and the RNG; provides failure injection (link down, node crash) and
//!   scripted control events for experiment drivers.
//! * [`trace`] — sc-trace: a deterministic, causally-keyed flight
//!   recorder whose exports are byte-identical across every scheduler
//!   at any shard count (plus a counters/histograms registry living in
//!   `sc_net::metrics`).

pub mod link;
pub mod netutil;
pub mod node;
pub mod sched;
pub mod trace;
pub mod world;

pub use link::{Endpoint, LinkId, LinkParams};
pub use netutil::ChannelPort;
pub use node::{Ctx, Node, NodeId, PortId, TimerToken};
pub use sched::SchedulerKind;
pub use trace::{Trace, TraceEvent, TracePhase};
pub use world::{WallClock, World, WorldStats};
