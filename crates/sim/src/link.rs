//! Point-to-point links.
//!
//! A link connects one port on each of two nodes and models:
//!
//! * propagation **latency** (fixed),
//! * optional **bandwidth**: serialization delay plus FIFO queueing per
//!   direction (`busy_until` bookkeeping),
//! * fault injection: probabilistic **loss** and byte **corruption**
//!   (the corrupted frame is still delivered — receivers must detect it
//!   via checksums, which is exactly what the wire formats do).
//!
//! Fault draws come from a counted splitmix64 stream **per link
//! direction**, seeded from `(world seed, link index, direction)`. Which
//! frames are hit is therefore a pure function of the seed and the
//! per-direction emission order — independent of how emissions on
//! *other* links interleave globally. That independence is what lets
//! the sharded kernel replay the exact same fault pattern as the
//! single-threaded reference executor.

use crate::node::{NodeId, PortId};
use sc_net::{Frame, SimDuration, SimTime};

/// Index of a link within a [`crate::World`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub usize);

/// Link characteristics.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Bits per second; `None` = infinite (no serialization delay).
    pub bandwidth_bps: Option<u64>,
    /// Probability in `[0,1]` that a frame is silently dropped.
    pub loss: f64,
    /// Probability in `[0,1]` that one byte of a frame is flipped.
    pub corrupt: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            latency: SimDuration::from_micros(10), // LAN-scale
            bandwidth_bps: None,
            loss: 0.0,
            corrupt: 0.0,
        }
    }
}

impl LinkParams {
    /// A LAN link with the given latency and otherwise default behavior.
    pub fn with_latency(latency: SimDuration) -> LinkParams {
        LinkParams {
            latency,
            ..LinkParams::default()
        }
    }

    /// 1 Gb/s Ethernet (the paper's lab links).
    pub fn gigabit(latency: SimDuration) -> LinkParams {
        LinkParams {
            latency,
            bandwidth_bps: Some(1_000_000_000),
            loss: 0.0,
            corrupt: 0.0,
        }
    }

    /// Serialization delay for a frame of `len` bytes.
    pub fn serialization_delay(&self, len: usize) -> SimDuration {
        match self.bandwidth_bps {
            None => SimDuration::ZERO,
            Some(bps) => {
                // ns = bytes * 8 * 1e9 / bps, computed without overflow
                // for realistic frame sizes.
                let bits = (len as u64) * 8;
                SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / bps.max(1))
            }
        }
    }
}

/// One endpoint of a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Endpoint {
    pub node: NodeId,
    pub port: PortId,
}

/// One step of the splitmix64 generator: advances `state` and returns
/// a well-mixed 64-bit draw.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a 64-bit draw to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Internal link state.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Link {
    pub a: Endpoint,
    pub b: Endpoint,
    pub params: LinkParams,
    pub up: bool,
    /// Per-direction transmitter-busy horizon: [a->b, b->a].
    pub busy_until: [SimTime; 2],
    /// Per-direction counted fault-stream state (see the module docs).
    pub fault_state: [u64; 2],
}

impl Link {
    pub(crate) fn new(a: Endpoint, b: Endpoint, params: LinkParams, fault_seed: u64) -> Link {
        // Decorrelate the two directions: run each sub-seed through one
        // mix round so nearby link indices don't yield nearby streams.
        let mut s0 = fault_seed;
        let mut s1 = fault_seed ^ 0xD1B5_4A32_D192_ED03;
        splitmix64(&mut s0);
        splitmix64(&mut s1);
        Link {
            a,
            b,
            params,
            up: true,
            busy_until: [SimTime::ZERO; 2],
            fault_state: [s0, s1],
        }
    }

    /// Run one frame through this direction's seeded fault stream just
    /// before it enters the wire. Returns `None` when the frame is lost,
    /// otherwise `Some(corrupted)` — on corruption one bit has been
    /// flipped in place (copy-on-write, so shared holders are safe).
    pub(crate) fn apply_faults(&mut self, dir: usize, frame: &mut Frame) -> Option<bool> {
        if self.params.loss > 0.0
            && unit_f64(splitmix64(&mut self.fault_state[dir])) < self.params.loss
        {
            return None;
        }
        let mut corrupted = false;
        if self.params.corrupt > 0.0
            && unit_f64(splitmix64(&mut self.fault_state[dir])) < self.params.corrupt
            && !frame.is_empty()
        {
            let idx = (splitmix64(&mut self.fault_state[dir]) % frame.len() as u64) as usize;
            let bit = (splitmix64(&mut self.fault_state[dir]) % 8) as u32;
            frame.make_mut()[idx] ^= 1u8 << bit;
            corrupted = true;
        }
        Some(corrupted)
    }

    /// Given the sending endpoint, the direction index and the receiver.
    pub(crate) fn direction_from(&self, from: Endpoint) -> Option<(usize, Endpoint)> {
        if from == self.a {
            Some((0, self.b))
        } else if from == self.b {
            Some((1, self.a))
        } else {
            None
        }
    }

    /// Compute the arrival time of a frame of `len` bytes entering the
    /// link in direction `dir` at time `now`, updating queue occupancy.
    pub(crate) fn schedule_arrival(&mut self, dir: usize, now: SimTime, len: usize) -> SimTime {
        let start = if self.busy_until[dir] > now {
            self.busy_until[dir]
        } else {
            now
        };
        let ser = self.params.serialization_delay(len);
        let done = start + ser;
        self.busy_until[dir] = done;
        done + self.params.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_gigabit() {
        let p = LinkParams::gigabit(SimDuration::ZERO);
        // 64-byte frame on 1 Gb/s = 512 ns.
        assert_eq!(p.serialization_delay(64), SimDuration::from_nanos(512));
        // 1500 bytes = 12 us.
        assert_eq!(p.serialization_delay(1500), SimDuration::from_nanos(12_000));
        // Infinite bandwidth: zero.
        assert_eq!(
            LinkParams::default().serialization_delay(1500),
            SimDuration::ZERO
        );
    }

    #[test]
    fn fifo_queueing_accumulates() {
        let a = Endpoint {
            node: NodeId(0),
            port: PortId(0),
        };
        let b = Endpoint {
            node: NodeId(1),
            port: PortId(0),
        };
        let mut link = Link::new(a, b, LinkParams::gigabit(SimDuration::from_micros(10)), 0);
        let now = SimTime::from_micros(100);
        // Two back-to-back 64B frames: second starts when first finishes.
        let t1 = link.schedule_arrival(0, now, 64);
        let t2 = link.schedule_arrival(0, now, 64);
        assert_eq!(
            t1,
            now + SimDuration::from_nanos(512) + SimDuration::from_micros(10)
        );
        assert_eq!(t2, t1 + SimDuration::from_nanos(512));
        // Opposite direction is independent (full duplex).
        let t3 = link.schedule_arrival(1, now, 64);
        assert_eq!(t3, t1);
    }

    #[test]
    fn direction_resolution() {
        let a = Endpoint {
            node: NodeId(0),
            port: PortId(3),
        };
        let b = Endpoint {
            node: NodeId(7),
            port: PortId(1),
        };
        let link = Link::new(a, b, LinkParams::default(), 0);
        assert_eq!(link.direction_from(a), Some((0, b)));
        assert_eq!(link.direction_from(b), Some((1, a)));
        let stranger = Endpoint {
            node: NodeId(9),
            port: PortId(0),
        };
        assert_eq!(link.direction_from(stranger), None);
    }
}
