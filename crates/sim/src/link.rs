//! Point-to-point links.
//!
//! A link connects one port on each of two nodes and models:
//!
//! * propagation **latency** (fixed),
//! * optional **bandwidth**: serialization delay plus FIFO queueing per
//!   direction (`busy_until` bookkeeping),
//! * fault injection: probabilistic **loss** and byte **corruption**
//!   (the corrupted frame is still delivered — receivers must detect it
//!   via checksums, which is exactly what the wire formats do).

use crate::node::{NodeId, PortId};
use sc_net::{SimDuration, SimTime};

/// Index of a link within a [`crate::World`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub usize);

/// Link characteristics.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Bits per second; `None` = infinite (no serialization delay).
    pub bandwidth_bps: Option<u64>,
    /// Probability in `[0,1]` that a frame is silently dropped.
    pub loss: f64,
    /// Probability in `[0,1]` that one byte of a frame is flipped.
    pub corrupt: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            latency: SimDuration::from_micros(10), // LAN-scale
            bandwidth_bps: None,
            loss: 0.0,
            corrupt: 0.0,
        }
    }
}

impl LinkParams {
    /// A LAN link with the given latency and otherwise default behavior.
    pub fn with_latency(latency: SimDuration) -> LinkParams {
        LinkParams {
            latency,
            ..LinkParams::default()
        }
    }

    /// 1 Gb/s Ethernet (the paper's lab links).
    pub fn gigabit(latency: SimDuration) -> LinkParams {
        LinkParams {
            latency,
            bandwidth_bps: Some(1_000_000_000),
            loss: 0.0,
            corrupt: 0.0,
        }
    }

    /// Serialization delay for a frame of `len` bytes.
    pub fn serialization_delay(&self, len: usize) -> SimDuration {
        match self.bandwidth_bps {
            None => SimDuration::ZERO,
            Some(bps) => {
                // ns = bytes * 8 * 1e9 / bps, computed without overflow
                // for realistic frame sizes.
                let bits = (len as u64) * 8;
                SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / bps.max(1))
            }
        }
    }
}

/// One endpoint of a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Endpoint {
    pub node: NodeId,
    pub port: PortId,
}

/// Internal link state.
#[derive(Debug)]
pub(crate) struct Link {
    pub a: Endpoint,
    pub b: Endpoint,
    pub params: LinkParams,
    pub up: bool,
    /// Per-direction transmitter-busy horizon: [a->b, b->a].
    pub busy_until: [SimTime; 2],
}

impl Link {
    pub(crate) fn new(a: Endpoint, b: Endpoint, params: LinkParams) -> Link {
        Link {
            a,
            b,
            params,
            up: true,
            busy_until: [SimTime::ZERO; 2],
        }
    }

    /// Given the sending endpoint, the direction index and the receiver.
    pub(crate) fn direction_from(&self, from: Endpoint) -> Option<(usize, Endpoint)> {
        if from == self.a {
            Some((0, self.b))
        } else if from == self.b {
            Some((1, self.a))
        } else {
            None
        }
    }

    /// Compute the arrival time of a frame of `len` bytes entering the
    /// link in direction `dir` at time `now`, updating queue occupancy.
    pub(crate) fn schedule_arrival(&mut self, dir: usize, now: SimTime, len: usize) -> SimTime {
        let start = if self.busy_until[dir] > now {
            self.busy_until[dir]
        } else {
            now
        };
        let ser = self.params.serialization_delay(len);
        let done = start + ser;
        self.busy_until[dir] = done;
        done + self.params.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_gigabit() {
        let p = LinkParams::gigabit(SimDuration::ZERO);
        // 64-byte frame on 1 Gb/s = 512 ns.
        assert_eq!(p.serialization_delay(64), SimDuration::from_nanos(512));
        // 1500 bytes = 12 us.
        assert_eq!(p.serialization_delay(1500), SimDuration::from_nanos(12_000));
        // Infinite bandwidth: zero.
        assert_eq!(
            LinkParams::default().serialization_delay(1500),
            SimDuration::ZERO
        );
    }

    #[test]
    fn fifo_queueing_accumulates() {
        let a = Endpoint {
            node: NodeId(0),
            port: PortId(0),
        };
        let b = Endpoint {
            node: NodeId(1),
            port: PortId(0),
        };
        let mut link = Link::new(a, b, LinkParams::gigabit(SimDuration::from_micros(10)));
        let now = SimTime::from_micros(100);
        // Two back-to-back 64B frames: second starts when first finishes.
        let t1 = link.schedule_arrival(0, now, 64);
        let t2 = link.schedule_arrival(0, now, 64);
        assert_eq!(
            t1,
            now + SimDuration::from_nanos(512) + SimDuration::from_micros(10)
        );
        assert_eq!(t2, t1 + SimDuration::from_nanos(512));
        // Opposite direction is independent (full duplex).
        let t3 = link.schedule_arrival(1, now, 64);
        assert_eq!(t3, t1);
    }

    #[test]
    fn direction_resolution() {
        let a = Endpoint {
            node: NodeId(0),
            port: PortId(3),
        };
        let b = Endpoint {
            node: NodeId(7),
            port: PortId(1),
        };
        let link = Link::new(a, b, LinkParams::default());
        assert_eq!(link.direction_from(a), Some((0, b)));
        assert_eq!(link.direction_from(b), Some((1, a)));
        let stranger = Endpoint {
            node: NodeId(9),
            port: PortId(0),
        };
        assert_eq!(link.direction_from(stranger), None);
    }
}
