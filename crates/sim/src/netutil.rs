//! Node-side plumbing for running a reliable channel over UDP/IPv4/
//! Ethernet on a simulated port.
//!
//! Every control-plane session in the workspace (BGP, OpenFlow, the
//! controller's REST-like API) is a [`sc_net::channel::Endpoint`] whose
//! segments ride UDP datagrams. This helper owns the endpoint, the
//! addressing, and the retransmission timer bookkeeping, so node
//! implementations stay focused on their protocol logic.

use crate::node::{Ctx, PortId, TimerToken};
use sc_net::channel::{ChannelConfig, ChannelEvent, Endpoint};
use sc_net::wire::{udp_frame, UdpDatagram, UdpEndpoints};
use sc_net::SimTime;

/// A reliable message channel bound to a UDP endpoint pair on one port.
#[derive(Debug)]
pub struct ChannelPort {
    ep: Endpoint,
    cfg: ChannelConfig,
    /// True for the active opener (reconnects with a SYN after
    /// [`ChannelPort::reset`]); false for the passive listener.
    active: bool,
    /// Our (src) → peer (dst) addressing.
    pub addr: UdpEndpoints,
    /// The simulated port frames leave through.
    pub port: PortId,
    /// Timer token the owner dedicates to this channel's retransmissions.
    pub timer: TimerToken,
    /// Deadline currently armed (avoid re-arming storms).
    armed_at: Option<SimTime>,
}

impl ChannelPort {
    /// Active opener (client side).
    pub fn connect(
        cfg: ChannelConfig,
        addr: UdpEndpoints,
        port: PortId,
        timer: TimerToken,
    ) -> ChannelPort {
        ChannelPort {
            ep: Endpoint::connect(cfg),
            cfg,
            active: true,
            addr,
            port,
            timer,
            armed_at: None,
        }
    }

    /// Passive listener (server side).
    pub fn listen(
        cfg: ChannelConfig,
        addr: UdpEndpoints,
        port: PortId,
        timer: TimerToken,
    ) -> ChannelPort {
        ChannelPort {
            ep: Endpoint::listen(cfg),
            cfg,
            active: false,
            addr,
            port,
            timer,
            armed_at: None,
        }
    }

    /// Tear the transport down and prepare a fresh connection on the
    /// same 5-tuple: the active side will emit a SYN at the next
    /// [`ChannelPort::flush`] (retransmitted until the peer answers),
    /// the passive side returns to listening. This is the BGP notion of
    /// dropping the TCP connection when the session resets — without it
    /// a reliable channel survives carrier flaps by retransmission and
    /// [`sc_net::channel::ChannelEvent::Connected`] would never fire
    /// again, so the session could never re-establish.
    pub fn reset(&mut self) {
        self.ep = if self.active {
            Endpoint::connect(self.cfg)
        } else {
            Endpoint::listen(self.cfg)
        };
        self.armed_at = None;
    }

    /// Does this datagram belong to this channel (right 5-tuple)?
    pub fn matches(&self, d: &UdpDatagram) -> bool {
        d.udp.dst_port == self.addr.src_port
            && d.udp.src_port == self.addr.dst_port
            && d.ip.src == self.addr.dst_ip
            && d.ip.dst == self.addr.src_ip
    }

    /// Queue an application message for reliable delivery. Call
    /// [`ChannelPort::flush`] afterwards (or at end of handler).
    pub fn send(&mut self, msg: Vec<u8>) {
        self.ep.send(msg);
    }

    /// A cleared recycled buffer to encode the next message into; hand
    /// it back via [`ChannelPort::send`] (zero-alloc, zero-copy: the
    /// endpoint returns acknowledged messages' buffers to its pool).
    pub fn take_buffer(&mut self) -> Vec<u8> {
        self.ep.take_buffer()
    }

    /// Feed a matching datagram; returns delivered events in order.
    pub fn on_datagram(&mut self, d: &UdpDatagram, now: SimTime) -> Vec<ChannelEvent> {
        // A corrupted segment that survived the UDP checksum (or a
        // malformed peer) is dropped; retransmission repairs it.
        self.ep.on_segment(&d.payload, now).unwrap_or_default()
    }

    /// Transmit everything due and (re-)arm the retransmission timer.
    pub fn flush(&mut self, ctx: &mut Ctx) {
        while let Some(seg) = self.ep.poll_transmit(ctx.now()) {
            let frame = udp_frame(self.addr, 64, &seg);
            ctx.send_frame(self.port, frame);
        }
        if let Some(at) = self.ep.next_wakeup() {
            if self.armed_at != Some(at) {
                self.armed_at = Some(at);
                ctx.set_timer_at(at, self.timer);
            }
        }
    }

    /// Handle the channel's retransmission timer (call from `on_timer`
    /// when the token matches).
    pub fn on_timer(&mut self, ctx: &mut Ctx) {
        self.armed_at = None;
        self.flush(ctx);
    }

    /// Access to the underlying endpoint (state, stats).
    pub fn endpoint(&self) -> &Endpoint {
        &self.ep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use crate::node::{Node, NodeId};
    use crate::world::World;
    use sc_net::wire::open_udp_frame;
    use sc_net::MacAddr;
    use std::any::Any;
    use std::net::Ipv4Addr;

    /// A node that reliably sends `to_send` messages to its peer and
    /// records everything it receives.
    struct Talker {
        name: String,
        chan: Option<ChannelPort>,
        to_send: Vec<Vec<u8>>,
        received: Vec<Vec<u8>>,
        connected: bool,
    }

    impl Talker {
        fn new(name: &str) -> Talker {
            Talker {
                name: name.into(),
                chan: None,
                to_send: Vec::new(),
                received: Vec::new(),
                connected: false,
            }
        }
    }

    impl Node for Talker {
        fn name(&self) -> &str {
            &self.name
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            if let Some(chan) = &mut self.chan {
                for m in self.to_send.drain(..) {
                    chan.send(m);
                }
                chan.flush(ctx);
            }
        }
        fn on_frame(&mut self, ctx: &mut Ctx, _port: PortId, frame: sc_net::Frame) {
            let Ok(Some(d)) = open_udp_frame(&frame) else {
                return;
            };
            let chan = self.chan.as_mut().unwrap();
            if !chan.matches(&d) {
                return;
            }
            for ev in chan.on_datagram(&d, ctx.now()) {
                match ev {
                    ChannelEvent::Delivered(m) => self.received.push(m),
                    ChannelEvent::Connected => self.connected = true,
                    ChannelEvent::PeerClosed => {}
                }
            }
            chan.flush(ctx);
        }
        fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
            let chan = self.chan.as_mut().unwrap();
            if token == chan.timer {
                chan.on_timer(ctx);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn wire_up(loss: f64) -> (World, NodeId, NodeId) {
        let mut w = World::new(77);
        let a = w.add_node(Talker::new("client"));
        let b = w.add_node(Talker::new("server"));
        let (_l, pa, pb) = w.connect(
            a,
            b,
            LinkParams {
                loss,
                ..LinkParams::with_latency(sc_net::SimDuration::from_micros(50))
            },
        );
        let addr_a = UdpEndpoints {
            src_mac: MacAddr::new(0, 0, 0, 0, 0, 1),
            dst_mac: MacAddr::new(0, 0, 0, 0, 0, 2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 40000,
            dst_port: 6653,
        };
        w.node_mut::<Talker>(a).chan = Some(ChannelPort::connect(
            ChannelConfig::default(),
            addr_a,
            pa,
            TimerToken(1),
        ));
        w.node_mut::<Talker>(b).chan = Some(ChannelPort::listen(
            ChannelConfig::default(),
            addr_a.flipped(),
            pb,
            TimerToken(1),
        ));
        (w, a, b)
    }

    #[test]
    fn lossless_delivery_in_order() {
        let (mut w, a, b) = wire_up(0.0);
        w.node_mut::<Talker>(a).to_send = (0..20u8).map(|i| vec![i]).collect();
        w.run_until_idle(100_000);
        let got: Vec<u8> = w.node::<Talker>(b).received.iter().map(|m| m[0]).collect();
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
        assert!(w.node::<Talker>(a).connected);
        assert!(w.node::<Talker>(b).connected);
    }

    #[test]
    fn lossy_link_repaired_by_retransmission() {
        let (mut w, a, b) = wire_up(0.25);
        w.node_mut::<Talker>(a).to_send = (0..50u8).map(|i| vec![i]).collect();
        w.run_until_idle(1_000_000);
        let got: Vec<u8> = w.node::<Talker>(b).received.iter().map(|m| m[0]).collect();
        assert_eq!(
            got,
            (0..50).collect::<Vec<u8>>(),
            "in order despite 25% loss"
        );
        assert!(w.stats().frames_dropped_loss > 0, "loss actually happened");
    }

    #[test]
    fn bidirectional_traffic() {
        let (mut w, a, b) = wire_up(0.0);
        w.node_mut::<Talker>(a).to_send = vec![b"ping".to_vec()];
        w.node_mut::<Talker>(b).to_send = vec![b"pong".to_vec()];
        w.run_until_idle(100_000);
        assert_eq!(w.node::<Talker>(b).received, vec![b"ping".to_vec()]);
        assert_eq!(w.node::<Talker>(a).received, vec![b"pong".to_vec()]);
    }
}
