//! The [`Node`] trait and the action-collecting [`Ctx`] handed to nodes.
//!
//! Nodes are pure state machines: a handler receives a [`Ctx`], inspects
//! `ctx.now()`, and *requests* effects (send a frame, arm a timer). The
//! kernel applies those effects after the handler returns, which keeps
//! borrow structure simple and event ordering explicit.

use sc_net::{Frame, SimDuration, SimTime};
use std::any::Any;
use std::fmt;

/// Index of a node within a [`crate::World`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// Index of a port local to one node (allocated in connection order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub usize);

/// An opaque timer cookie chosen by the node; delivered back verbatim.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerToken(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Effects a node handler requests; applied by the kernel afterwards.
#[derive(Debug)]
pub(crate) enum Action {
    /// Transmit `frame` on `port` at time `at` (>= now).
    SendFrame {
        port: PortId,
        frame: Frame,
        at: SimTime,
    },
    /// Deliver a timer event carrying `token` at time `at`.
    SetTimer { at: SimTime, token: TimerToken },
}

/// The per-invocation context handed to node handlers.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    /// Origin key of the kernel event being dispatched — the causal
    /// stamp for every trace record this invocation emits.
    pub(crate) cause: u64,
    pub(crate) actions: Vec<Action>,
    pub(crate) trace: &'a mut crate::trace::Trace,
    pub(crate) metrics: &'a mut sc_net::metrics::Registry,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node being invoked.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Transmit an encoded frame on one of this node's ports, now.
    /// Accepts a [`Frame`] (refcount bump) or a freshly built `Vec<u8>`.
    pub fn send_frame(&mut self, port: PortId, frame: impl Into<Frame>) {
        self.actions.push(Action::SendFrame {
            port,
            frame: frame.into(),
            at: self.now,
        });
    }

    /// Transmit a frame after a local processing delay (e.g. hardware
    /// table-programming latency before a notification leaves the box).
    pub fn send_frame_after(&mut self, port: PortId, frame: impl Into<Frame>, delay: SimDuration) {
        self.actions.push(Action::SendFrame {
            port,
            frame: frame.into(),
            at: self.now + delay,
        });
    }

    /// Arm a timer that fires at absolute time `at`.
    pub fn set_timer_at(&mut self, at: SimTime, token: TimerToken) {
        debug_assert!(at >= self.now, "timer armed in the past");
        self.actions.push(Action::SetTimer { at, token });
    }

    /// Arm a timer that fires after `delay`.
    pub fn set_timer_after(&mut self, delay: SimDuration, token: TimerToken) {
        self.actions.push(Action::SetTimer {
            at: self.now + delay,
            token,
        });
    }

    /// Record a free-form trace line (no-op unless tracing is enabled).
    pub fn trace(&mut self, category: &'static str, message: impl FnOnce() -> String) {
        self.trace_instant(category, category, 0, 0, message);
    }

    /// Record a structured point event. `detail` only renders when
    /// tracing is enabled; the disabled path is a single branch.
    pub fn trace_instant(
        &mut self,
        cat: &'static str,
        name: &'static str,
        id: u64,
        v: u64,
        detail: impl FnOnce() -> String,
    ) {
        self.trace.emit(
            self.now,
            self.cause,
            self.node,
            crate::trace::TracePhase::Instant,
            cat,
            name,
            id,
            v,
            detail,
        );
    }

    /// Open a span; close it with [`Ctx::span_end`] using the same
    /// `name` and correlation `id` (possibly from a later invocation).
    pub fn span_begin(&mut self, cat: &'static str, name: &'static str, id: u64, v: u64) {
        self.trace.emit(
            self.now,
            self.cause,
            self.node,
            crate::trace::TracePhase::Begin,
            cat,
            name,
            id,
            v,
            String::new,
        );
    }

    /// Close a span opened by [`Ctx::span_begin`].
    pub fn span_end(&mut self, cat: &'static str, name: &'static str, id: u64, v: u64) {
        self.trace.emit(
            self.now,
            self.cause,
            self.node,
            crate::trace::TracePhase::End,
            cat,
            name,
            id,
            v,
            String::new,
        );
    }

    /// Record a sampled counter value on this node's timeline.
    pub fn trace_counter(&mut self, cat: &'static str, name: &'static str, v: u64) {
        self.trace.emit(
            self.now,
            self.cause,
            self.node,
            crate::trace::TracePhase::Counter,
            cat,
            name,
            0,
            v,
            String::new,
        );
    }

    /// The world's metrics registry (counters + histograms). Recording
    /// is a no-op unless the registry is enabled on the world.
    pub fn metrics(&mut self) -> &mut sc_net::metrics::Registry {
        self.metrics
    }
}

/// A device attached to the simulated network.
///
/// Implementations must be `'static` so the kernel can own them and tests
/// can downcast via [`Node::as_any`], and `Send` so the sharded kernel
/// can hand a shard's nodes to a worker thread for one lookahead window.
/// Nodes never run concurrently with anything that can observe them —
/// the barrier returns them before any control or accessor touches the
/// world — so no node ever needs interior synchronization (`Sync` is
/// deliberately *not* required).
pub trait Node: Any + Send {
    /// Human-readable name for traces and panics.
    fn name(&self) -> &str;

    /// Called once, at the time the world starts running.
    fn on_start(&mut self, _ctx: &mut Ctx) {}

    /// An encoded Ethernet frame arrived on `port`. The [`Frame`] may be
    /// shared with other in-flight copies (a flood); mutate it through
    /// [`Frame::make_mut`] only.
    fn on_frame(&mut self, ctx: &mut Ctx, port: PortId, frame: Frame);

    /// A previously armed timer fired.
    fn on_timer(&mut self, _ctx: &mut Ctx, _token: TimerToken) {}

    /// The link attached to `port` changed carrier state.
    ///
    /// Real switches see carrier loss when a cable is pulled; the paper's
    /// detection path is BFD instead, so most nodes ignore this.
    fn on_link_status(&mut self, _ctx: &mut Ctx, _port: PortId, _up: bool) {}

    /// Downcast support for inspection from tests and experiment drivers.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
