//! Event schedulers for the kernel: the hierarchical timer wheel the
//! [`crate::World`] runs on, and the binary-heap reference it is
//! differentially tested against.
//!
//! The kernel's determinism contract hangs on one property: events are
//! delivered in exact `(time, seq)` order, where `seq` is the world's
//! **origin key** — `(origin stream << 44) | per-stream counter`, with
//! stream 0 the world/control stream and stream `n + 1` node `n` (see
//! `World::key_for`). The key is a pure function of *which state
//! machine emitted the event and how many events it emitted before*,
//! never of how emissions interleave globally — so every scheduler
//! here, including the sharded one executing windows on worker threads,
//! reproduces the identical total order bit-for-bit. The suite-level
//! regression tests prove it by comparing stable reports byte-for-byte
//! across schedulers and shard counts.
//!
//! ## Wheel layout
//!
//! The [`TimerWheel`] is a single near wheel plus an overflow heap:
//!
//! * **Near wheel** — `SLOTS` (256) circular buckets of `1 <<
//!   SLOT_BITS` ns (2.048 µs) each, covering a ~524 µs window from the
//!   current base. Hot work (frame flights, link serialization, FIB
//!   walk ticks, sub-millisecond BFD) lands here in O(1): an occupancy
//!   bitmap finds the next non-empty bucket in a handful of word
//!   scans, and the earliest bucket is drained through a sorted
//!   **active batch** — sorted once on activation, consumed by cursor —
//!   so exact `(time, seq)` order survives bucketing and co-timed
//!   event storms cost O(1) per event, not a per-pop bucket scan.
//! * **Overflow heap** — events beyond the window (millisecond-plus
//!   timers, keepalives, pre-scheduled scenario scripts) wait in a
//!   plain binary heap and are promoted into the wheel as the base
//!   advances. Each event is promoted at most once, and — unlike a
//!   global heap — a deep backlog of far-future events never taxes the
//!   near-term hot path.
//!
//! The base only moves forward, mirroring the kernel's monotonic
//! virtual clock. Events pushed at or behind the base (scheduled for
//! "now", or arriving after a deadline-bounded run parked the base
//! ahead of the clock) merge into the active batch with order
//! preserved.

use crate::world::EventKind;
use sc_net::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A queued event: total order by `(time, seq)` — `seq` is the globally
/// unique origin key, so simultaneous events keep a deterministic order
/// that does not depend on insertion interleaving.
pub(crate) struct Queued {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event-queue abstraction the kernel runs on. Implementations must
/// pop in exact `(time, seq)` order.
pub(crate) trait Scheduler {
    /// Insert an event. `ev.time` is never earlier than the time of the
    /// most recently popped event (the kernel's clock is monotonic).
    fn push(&mut self, ev: Queued);

    /// Remove and return the minimum event if its time is `<= deadline`.
    fn pop_before(&mut self, deadline: SimTime) -> Option<Queued>;

    /// Remove and return the minimum event.
    fn pop(&mut self) -> Option<Queued> {
        self.pop_before(SimTime::MAX)
    }

    /// `(time, seq)` of the minimum event without removing it. Takes
    /// `&mut self` because the wheel may activate its next batch to
    /// answer; observable state is unchanged.
    fn peek(&mut self) -> Option<(SimTime, u64)>;

    /// Number of pending events.
    fn len(&self) -> usize;
}

/// Which scheduler a [`crate::World`] runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// The hierarchical timer wheel (the default).
    #[default]
    TimerWheel,
    /// The original global `BinaryHeap` — kept as the reference
    /// implementation for differential testing.
    ReferenceHeap,
    /// Per-shard timer wheels synchronized by conservative lookahead:
    /// the world partitions its nodes into `shards` regions (see
    /// `World::set_shard_map`) and `run_until` executes each lookahead
    /// window on worker threads. Stable reports are byte-identical to
    /// [`SchedulerKind::ReferenceHeap`] at any shard count — the origin
    /// keys make the total event order independent of the executor.
    Sharded { shards: usize },
}

/// The kernel's scheduler storage: enum dispatch keeps `push`/`pop` on
/// the hot event loop statically resolvable (and inlinable), which a
/// `Box<dyn Scheduler>` measurably is not on the shallow-queue
/// data-plane workloads.
pub(crate) enum AnyScheduler {
    Wheel(TimerWheel),
    Heap(HeapScheduler),
    Sharded(ShardedQueues),
}

pub(crate) fn make_scheduler(kind: SchedulerKind) -> AnyScheduler {
    match kind {
        SchedulerKind::TimerWheel => AnyScheduler::Wheel(TimerWheel::new()),
        SchedulerKind::ReferenceHeap => AnyScheduler::Heap(HeapScheduler::default()),
        SchedulerKind::Sharded { shards } => AnyScheduler::Sharded(ShardedQueues::new(shards)),
    }
}

impl Scheduler for AnyScheduler {
    #[inline]
    fn push(&mut self, ev: Queued) {
        match self {
            AnyScheduler::Wheel(w) => w.push(ev),
            AnyScheduler::Heap(h) => h.push(ev),
            AnyScheduler::Sharded(s) => s.push(ev),
        }
    }

    #[inline]
    fn pop_before(&mut self, deadline: SimTime) -> Option<Queued> {
        match self {
            AnyScheduler::Wheel(w) => w.pop_before(deadline),
            AnyScheduler::Heap(h) => h.pop_before(deadline),
            AnyScheduler::Sharded(s) => s.pop_before(deadline),
        }
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        match self {
            AnyScheduler::Wheel(w) => w.peek(),
            AnyScheduler::Heap(h) => h.peek(),
            AnyScheduler::Sharded(s) => s.peek(),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyScheduler::Wheel(w) => w.len(),
            AnyScheduler::Heap(h) => h.len(),
            AnyScheduler::Sharded(s) => s.len(),
        }
    }
}

/// The reference scheduler: one global binary heap.
#[derive(Default)]
pub(crate) struct HeapScheduler {
    heap: BinaryHeap<Reverse<Queued>>,
}

impl Scheduler for HeapScheduler {
    fn push(&mut self, ev: Queued) {
        self.heap.push(Reverse(ev));
    }

    fn pop_before(&mut self, deadline: SimTime) -> Option<Queued> {
        match self.heap.peek() {
            Some(Reverse(ev)) if ev.time <= deadline => self.heap.pop().map(|Reverse(ev)| ev),
            _ => None,
        }
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse(ev)| (ev.time, ev.seq))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// The sharded scheduler: one timer wheel per shard plus a control heap.
///
/// Events route by their target node's shard (`shard_of`); control
/// events — closures with full `&mut World` access — always stay on the
/// main thread's heap. As a [`Scheduler`] it pops the global `(time,
/// seq)` minimum across every queue, so serial execution over it (one
/// shard, tracing enabled, `run_until_idle`) reproduces the reference
/// order exactly; `World::run_until` additionally knows how to take
/// whole wheels out and run lookahead windows on worker threads.
pub(crate) struct ShardedQueues {
    /// Node index -> shard. Nodes beyond the map (added after
    /// `set_map`) default to shard 0.
    pub(crate) shard_of: Vec<u32>,
    /// `None` only while a window executor has the wheel checked out.
    pub(crate) wheels: Vec<Option<TimerWheel>>,
    /// Control events only.
    pub(crate) ctl: HeapScheduler,
}

impl ShardedQueues {
    pub(crate) fn new(shards: usize) -> ShardedQueues {
        ShardedQueues {
            shard_of: Vec::new(),
            wheels: (0..shards.max(1))
                .map(|_| Some(TimerWheel::new()))
                .collect(),
            ctl: HeapScheduler::default(),
        }
    }

    #[inline]
    pub(crate) fn shard_of_node(&self, node: usize) -> usize {
        let s = self.shard_of.get(node).copied().unwrap_or(0) as usize;
        s.min(self.wheels.len() - 1)
    }

    #[inline]
    fn wheel(&mut self, shard: usize) -> &mut TimerWheel {
        self.wheels[shard]
            .as_mut()
            .expect("wheel checked out by a window executor")
    }

    /// Install a new node->shard map, rerouting everything already
    /// queued (events scheduled before the partition was known live in
    /// shard 0's wheel).
    pub(crate) fn set_map(&mut self, map: Vec<u32>) {
        let mut drained: Vec<Queued> = Vec::new();
        for w in &mut self.wheels {
            let w = w.as_mut().expect("wheel checked out during set_map");
            while let Some(ev) = w.pop() {
                drained.push(ev);
            }
            *w = TimerWheel::new();
        }
        self.shard_of = map;
        for ev in drained {
            self.push(ev);
        }
    }

    /// Shard that will execute `kind`, or `None` for control events.
    fn route(&self, kind: &EventKind) -> Option<usize> {
        kind.target_node().map(|n| self.shard_of_node(n))
    }
}

impl Scheduler for ShardedQueues {
    fn push(&mut self, ev: Queued) {
        match self.route(&ev.kind) {
            None => self.ctl.push(ev),
            Some(shard) => self.wheel(shard).push(ev),
        }
    }

    fn pop_before(&mut self, deadline: SimTime) -> Option<Queued> {
        let mut best: Option<(SimTime, u64, Option<usize>)> =
            self.ctl.peek().map(|(t, s)| (t, s, None));
        for i in 0..self.wheels.len() {
            if let Some((t, s)) = self.wheel(i).peek() {
                if best.is_none() || (t, s) < (best.unwrap().0, best.unwrap().1) {
                    best = Some((t, s, Some(i)));
                }
            }
        }
        match best {
            Some((t, _, src)) if t <= deadline => match src {
                None => self.ctl.pop(),
                Some(i) => self.wheel(i).pop(),
            },
            _ => None,
        }
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        let mut best = self.ctl.peek();
        for i in 0..self.wheels.len() {
            if let Some(k) = self.wheel(i).peek() {
                if best.is_none() || k < best.unwrap() {
                    best = Some(k);
                }
            }
        }
        best
    }

    fn len(&self) -> usize {
        let wheels: usize = self
            .wheels
            .iter()
            .map(|w| w.as_ref().map_or(0, |w| w.len()))
            .sum();
        wheels + self.ctl.len()
    }
}

/// Near-wheel bucket width: 2^11 ns = 2.048 µs — fine enough that
/// packet-rate workloads spread across buckets, coarse enough that the
/// window below covers the hot control-plane timescales.
const SLOT_BITS: u32 = 11;
/// Near-wheel bucket count (must be a multiple of 64 for the bitmap);
/// window = `SLOTS << SLOT_BITS` ≈ 524 µs.
const SLOTS: usize = 256;
const BITMAP_WORDS: usize = SLOTS / 64;

/// Cursor dummy left in consumed batch positions (never observed).
const CONSUMED: Queued = Queued {
    time: SimTime::ZERO,
    seq: 0,
    kind: EventKind::Control(usize::MAX),
};

/// The hierarchical timer wheel (see the module docs for the layout).
///
/// Pops drain one bucket at a time through a sorted **active batch**:
/// when the earliest occupied bucket is reached, its (unordered) events
/// are sorted once and then consumed by cursor in O(1) per event. This
/// keeps co-timed storms — a hundred flow timers firing at the same
/// instant, a replayed feed's burst of deliveries — at one comparison
/// per event instead of a per-pop scan of the bucket.
pub(crate) struct TimerWheel {
    /// Per-bucket event lists, unordered until activation.
    slots: Vec<Vec<Queued>>,
    /// One bit per slot: does it hold any event?
    occupied: [u64; BITMAP_WORDS],
    /// Absolute bucket index (`time >> SLOT_BITS`) of the batch being
    /// drained; slots hold buckets in `(base, base + SLOTS)`.
    base_bucket: u64,
    /// The bucket being drained, sorted ascending by `(time, seq)`,
    /// consumed from `active_at`. Late pushes that sort at or before
    /// `base_bucket` merge in here (ordering stays exact).
    active: Vec<Queued>,
    active_at: usize,
    /// Events at or beyond `base_bucket + SLOTS`.
    overflow: BinaryHeap<Reverse<Queued>>,
    /// Events currently held in `slots` (excluding `active`/`overflow`).
    wheel_len: usize,
}

#[inline]
fn bucket_of(t: SimTime) -> u64 {
    t.as_nanos() >> SLOT_BITS
}

#[inline]
fn key(ev: &Queued) -> (SimTime, u64) {
    (ev.time, ev.seq)
}

impl TimerWheel {
    pub(crate) fn new() -> TimerWheel {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            base_bucket: 0,
            active: Vec::new(),
            active_at: 0,
            overflow: BinaryHeap::new(),
            wheel_len: 0,
        }
    }

    #[inline]
    fn set_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn clear_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// First occupied slot at or after `from` in circular bucket order.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        // First (partial) word: mask off bits below `from`.
        let word_idx = from / 64;
        let first = self.occupied[word_idx] & (!0u64 << (from % 64));
        if first != 0 {
            return Some(word_idx * 64 + first.trailing_zeros() as usize);
        }
        // Remaining words, wrapping once around the ring.
        for i in 1..=BITMAP_WORDS {
            let w = (word_idx + i) % BITMAP_WORDS;
            let bits = if i == BITMAP_WORDS {
                // Back at the starting word: only bits below `from`.
                self.occupied[w] & !(!0u64 << (from % 64))
            } else {
                self.occupied[w]
            };
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Merge an event into the active batch, preserving ascending order
    /// past the cursor. Co-timed pushes (the overwhelmingly common
    /// case: same time, globally increasing `seq`) append in O(1).
    fn push_active(&mut self, ev: Queued) {
        match self.active.last() {
            Some(last) if key(last) > key(&ev) => {
                let pos = self.active[self.active_at..]
                    .binary_search_by_key(&key(&ev), key)
                    .unwrap_or_else(|p| p);
                self.active.insert(self.active_at + pos, ev);
            }
            _ => self.active.push(ev),
        }
    }

    #[inline]
    fn push_wheel(&mut self, bucket: u64, ev: Queued) {
        let slot = (bucket % SLOTS as u64) as usize;
        self.slots[slot].push(ev);
        self.set_bit(slot);
        self.wheel_len += 1;
    }

    /// Move every overflow event whose bucket entered the window into
    /// the wheel (or the active batch). Called when `base_bucket`
    /// advances; each event is promoted at most once.
    fn promote(&mut self) {
        let horizon = self.base_bucket + SLOTS as u64;
        while let Some(Reverse(ev)) = self.overflow.peek() {
            let bucket = bucket_of(ev.time);
            if bucket >= horizon {
                break;
            }
            let Some(Reverse(ev)) = self.overflow.pop() else {
                unreachable!()
            };
            if bucket <= self.base_bucket {
                self.push_active(ev);
            } else {
                self.push_wheel(bucket, ev);
            }
        }
    }

    /// Make the earliest pending bucket the active batch. Caller
    /// guarantees the current batch is exhausted and the wheel or
    /// overflow is non-empty.
    fn activate_next(&mut self) {
        self.active.clear();
        self.active_at = 0;
        if self.wheel_len == 0 {
            // Jump the base straight to the earliest overflow event.
            let Some(Reverse(ev)) = self.overflow.peek() else {
                unreachable!("activate_next on an empty scheduler")
            };
            self.base_bucket = bucket_of(ev.time);
            self.promote();
            self.active.sort_unstable_by_key(key);
            return;
        }
        let from = ((self.base_bucket + 1) % SLOTS as u64) as usize;
        let slot = self
            .next_occupied(from)
            .expect("wheel_len > 0 but no occupied slot");
        let delta = (slot + SLOTS - from) % SLOTS;
        self.base_bucket += delta as u64 + 1;
        self.clear_bit(slot);
        // Swap buffers so the drained slot inherits the old batch's
        // capacity — no allocation in steady state.
        std::mem::swap(&mut self.active, &mut self.slots[slot]);
        self.wheel_len -= self.active.len();
        self.active.sort_unstable_by_key(key);
        // The window moved: promotions may land in the new batch.
        self.promote();
    }
}

impl Scheduler for TimerWheel {
    #[inline]
    fn push(&mut self, ev: Queued) {
        let bucket = bucket_of(ev.time);
        if bucket <= self.base_bucket {
            // At-or-behind the batch being drained (an event scheduled
            // for "now", or a push after a deadline-bounded run parked
            // the base ahead of the clock): merge into the batch.
            self.push_active(ev);
        } else if bucket < self.base_bucket + SLOTS as u64 {
            self.push_wheel(bucket, ev);
        } else {
            self.overflow.push(Reverse(ev));
        }
    }

    #[inline]
    fn pop_before(&mut self, deadline: SimTime) -> Option<Queued> {
        loop {
            if let Some(ev) = self.active.get_mut(self.active_at) {
                if ev.time > deadline {
                    return None;
                }
                let ev = std::mem::replace(ev, CONSUMED);
                self.active_at += 1;
                return Some(ev);
            }
            if self.wheel_len == 0 && self.overflow.is_empty() {
                return None;
            }
            self.activate_next();
        }
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        loop {
            if let Some(ev) = self.active.get(self.active_at) {
                return Some((ev.time, ev.seq));
            }
            if self.wheel_len == 0 && self.overflow.is_empty() {
                return None;
            }
            self.activate_next();
        }
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len() + (self.active.len() - self.active_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn ev(time_ns: u64, seq: u64) -> Queued {
        Queued {
            time: SimTime::from_nanos(time_ns),
            seq,
            kind: EventKind::Control(seq as usize),
        }
    }

    fn drain_keys(s: &mut dyn Scheduler) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = s.pop() {
            out.push((e.time.as_nanos(), e.seq));
        }
        out
    }

    #[test]
    fn wheel_orders_same_slot_and_same_time() {
        let mut w = TimerWheel::new();
        // Three events inside one 8.192 µs bucket, two at the same
        // instant: order must be (time, seq).
        w.push(ev(5_000, 2));
        w.push(ev(4_000, 3));
        w.push(ev(4_000, 1));
        assert_eq!(drain_keys(&mut w), vec![(4_000, 1), (4_000, 3), (5_000, 2)]);
    }

    #[test]
    fn wheel_promotes_overflow_in_order() {
        let mut w = TimerWheel::new();
        // Far beyond the 33.5 ms horizon: keepalive-scale timers.
        w.push(ev(30_000_000_000, 1));
        w.push(ev(90_000_000_000, 2));
        // Near events.
        w.push(ev(10_000, 3));
        assert_eq!(w.len(), 3);
        assert_eq!(
            drain_keys(&mut w),
            vec![(10_000, 3), (30_000_000_000, 1), (90_000_000_000, 2)]
        );
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn pop_before_respects_deadline_across_regions() {
        let mut w = TimerWheel::new();
        w.push(ev(1_000, 1));
        w.push(ev(50_000_000_000, 2)); // overflow
        assert!(w.pop_before(SimTime::from_nanos(999)).is_none());
        assert_eq!(w.pop_before(SimTime::from_nanos(1_000)).unwrap().seq, 1);
        // Next event is in overflow; deadline short of it returns None
        // without disturbing anything.
        assert!(w.pop_before(SimTime::from_secs(49)).is_none());
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_before(SimTime::MAX).unwrap().seq, 2);
    }

    /// The differential test: a random monotone workload (interleaved
    /// pushes and pops, timescales from nanoseconds to minutes) must pop
    /// in the identical order from the wheel and the reference heap.
    #[test]
    fn wheel_matches_reference_heap_on_random_workloads() {
        for trial in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(trial);
            let mut wheel = TimerWheel::new();
            let mut heap = HeapScheduler::default();
            let mut now = 0u64;
            let mut seq = 0u64;
            let mut popped = 0usize;
            let mut pushed = 0usize;
            for _ in 0..2_000 {
                if pushed == popped || rng.gen_range(0u32..100) < 60 {
                    // Push at now + a span drawn across 6 decades.
                    let exp = rng.gen_range(0u32..7);
                    let span = rng.gen_range(0u64..10u64.pow(exp) * 100);
                    let e = ev(now + span, seq);
                    wheel.push(ev(now + span, seq));
                    heap.push(e);
                    seq += 1;
                    pushed += 1;
                } else {
                    let a = wheel.pop().unwrap();
                    let b = heap.pop().unwrap();
                    assert_eq!((a.time, a.seq), (b.time, b.seq), "trial {trial}");
                    now = a.time.as_nanos();
                    popped += 1;
                }
                assert_eq!(wheel.len(), heap.len());
            }
            loop {
                match (wheel.pop(), heap.pop()) {
                    (Some(a), Some(b)) => {
                        assert_eq!((a.time, a.seq), (b.time, b.seq), "drain, trial {trial}")
                    }
                    (None, None) => break,
                    _ => panic!("schedulers disagree on emptiness"),
                }
            }
        }
    }

    /// Wall-clock micro-comparison (ignored by default; run with
    /// `cargo test --release -p sc-sim -- --ignored --nocapture`).
    /// Replays a dataplane-like pattern: a rolling window of ~120
    /// pending events, pushes ~70 µs ahead of pops.
    #[test]
    #[ignore]
    fn wheel_vs_heap_microbench() {
        const N: u64 = 5_000_000;
        // (window, spread): dataplane-like shallow/near, and deep/far
        // (a scripted-scenario backlog). The third pattern mimics the
        // forwarding world exactly: bimodal +10.5 µs frame flights and
        // +71.4 µs per-flow timer re-arms.
        for (window, spread) in [(120u64, 70_000u64), (4_000, 10_000_000), (115, 0)] {
            let run = |label: &str, s: &mut dyn Scheduler| {
                let mut rng = SmallRng::seed_from_u64(9);
                for seq in 0..window {
                    let d = if spread == 0 {
                        if seq % 3 == 0 {
                            71_430
                        } else {
                            10_500
                        }
                    } else {
                        rng.gen_range(0..spread)
                    };
                    s.push(ev(d, seq));
                }
                let t0 = std::time::Instant::now();
                for seq in window..N {
                    let e = s.pop().unwrap();
                    let now = e.time.as_nanos();
                    let d = if spread == 0 {
                        if seq % 3 == 0 {
                            71_430
                        } else {
                            10_500
                        }
                    } else {
                        rng.gen_range(100..spread)
                    };
                    s.push(ev(now + d, seq));
                }
                let dt = t0.elapsed();
                println!(
                    "{label} (window {window}, spread {spread}ns): {:.1} ns/op",
                    dt.as_nanos() as f64 / N as f64,
                );
                while s.pop().is_some() {}
            };
            run("heap ", &mut HeapScheduler::default());
            run("wheel", &mut TimerWheel::new());
        }
    }

    #[test]
    fn wheel_handles_bucket_wraparound() {
        let mut w = TimerWheel::new();
        // Walk the base far enough that slot indices wrap the ring
        // several times, pushing just-ahead events as we go.
        let mut now = 0u64;
        let step = 10_000u64; // ~4.9 buckets
        for seq in 0..(3 * SLOTS) as u64 {
            now += step;
            w.push(ev(now, seq));
            let e = w.pop().unwrap();
            assert_eq!((e.time.as_nanos(), e.seq), (now, seq));
        }
        assert_eq!(w.len(), 0);
    }
}
