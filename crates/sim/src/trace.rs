//! Bounded in-memory event tracing.
//!
//! Tracing is opt-in: when disabled (the default for large sweeps) the
//! record call is a branch and nothing else, so hot paths stay cheap.

use crate::node::NodeId;
use sc_net::SimTime;
use std::collections::VecDeque;

/// One trace line.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    pub time: SimTime,
    pub node: NodeId,
    pub category: &'static str,
    pub message: String,
}

/// A bounded ring of trace records.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl Trace {
    /// A disabled trace (records are discarded).
    pub fn disabled() -> Trace {
        Trace {
            enabled: false,
            capacity: 0,
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// An enabled trace keeping the most recent `capacity` records.
    pub fn bounded(capacity: usize) -> Trace {
        Trace {
            enabled: true,
            capacity,
            records: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a line; `message` is only rendered when enabled.
    pub fn record(
        &mut self,
        time: SimTime,
        node: NodeId,
        category: &'static str,
        message: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            time,
            node,
            category,
            message: message(),
        });
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Records in a category, oldest first.
    pub fn in_category<'a>(
        &'a self,
        category: &'a str,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| r.category == category)
    }

    /// Number of records evicted by the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render all retained records as lines (for debugging dumps).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "[{}] {} {}: {}\n",
                r.time, r.node, r.category, r.message
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_discards() {
        let mut t = Trace::disabled();
        let mut rendered = false;
        t.record(SimTime::ZERO, NodeId(0), "x", || {
            rendered = true;
            "msg".into()
        });
        assert!(!rendered, "message closure must not run when disabled");
        assert_eq!(t.records().count(), 0);
    }

    #[test]
    fn bounded_trace_evicts_oldest() {
        let mut t = Trace::bounded(2);
        for i in 0..4u64 {
            t.record(SimTime::from_millis(i), NodeId(0), "c", || format!("{i}"));
        }
        let msgs: Vec<&str> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["2", "3"]);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn category_filter() {
        let mut t = Trace::bounded(10);
        t.record(SimTime::ZERO, NodeId(1), "bgp", || "a".into());
        t.record(SimTime::ZERO, NodeId(1), "arp", || "b".into());
        t.record(SimTime::ZERO, NodeId(2), "bgp", || "c".into());
        assert_eq!(t.in_category("bgp").count(), 2);
        assert_eq!(t.in_category("arp").count(), 1);
        assert!(t.render().contains("arp"));
    }
}
