//! sc-trace: deterministic causal tracing (flight recorder).
//!
//! Tracing is opt-in and zero-cost-when-off: the record call is one
//! branch and nothing else on the disabled path (names are
//! `&'static str`, details are closures that never run). When enabled,
//! every record is stamped with sim-time plus a **causal key**:
//!
//! * `cause` — the origin key of the kernel event whose dispatch
//!   produced this record (the same `(time, origin)` total order the
//!   scheduler uses), and
//! * `sub` — the record's index within that one dispatch.
//!
//! `(time, cause, sub)` is globally unique and sorting by it
//! reconstructs the exact serial processing order. That is what makes
//! trace output part of the byte-identical determinism contract: the
//! sharded kernel records into per-shard rings during a lookahead
//! window, and the barrier merge-sorts the batches back into the world
//! ring, producing the same bytes as the reference serial run at any
//! shard count.
//!
//! Eviction in the bounded ring is also scheduler-independent: a shard
//! ring only evicts a record once `capacity` younger records exist *on
//! the same shard*, and those younger records alone would evict it from
//! the merged ring too — so bounded shard rings followed by a merged
//! truncation retain exactly the records a serial bounded ring would.

use crate::node::NodeId;
use sc_net::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// How a record renders on a timeline (Chrome `trace_event` phases).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TracePhase {
    /// A point event ("i" in Chrome).
    // sc-check: allow(no-wall-clock) -- the Chrome trace-phase name, not std::time
    Instant,
    /// Opens a span; paired with [`TracePhase::End`] by `id` ("B").
    Begin,
    /// Closes a span ("E").
    End,
    /// A sampled counter value ("C").
    Counter,
}

impl TracePhase {
    fn chrome(self) -> &'static str {
        match self {
            TracePhase::Instant => "i",
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Counter => "C",
        }
    }
}

/// One structured trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub time: SimTime,
    /// Origin key of the kernel event whose dispatch produced this.
    pub cause: u64,
    /// Index of this record within its dispatch.
    pub sub: u32,
    pub node: NodeId,
    pub phase: TracePhase,
    /// Coarse category ("detect", "program", "bgp", "kernel", ...).
    pub cat: &'static str,
    /// Specific event name ("bfd.down", "flowmod.batch", ...).
    pub name: &'static str,
    /// Span/flow correlation id (barrier token, session index, ...).
    pub id: u64,
    /// Numeric payload (batch size, queue depth, counter value, ...).
    pub v: u64,
    /// Lazily rendered free-form detail; empty when not provided.
    pub detail: String,
}

impl TraceEvent {
    /// The global total-order key.
    #[inline]
    pub fn key(&self) -> (SimTime, u64, u32) {
        (self.time, self.cause, self.sub)
    }
}

/// A bounded flight-recorder ring of trace records.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    records: VecDeque<TraceEvent>,
    /// Total records ever recorded (retained + evicted).
    recorded: u64,
    // Sub-index tracking: consecutive records from one dispatch share
    // (time, cause) and get increasing `sub`. A dispatch runs on
    // exactly one executor, so per-ring tracking is exact.
    last_time: SimTime,
    last_cause: u64,
    next_sub: u32,
}

impl Trace {
    /// A disabled trace (records are discarded).
    pub fn disabled() -> Trace {
        Trace {
            enabled: false,
            capacity: 0,
            records: VecDeque::new(),
            recorded: 0,
            last_time: SimTime::ZERO,
            last_cause: u64::MAX,
            next_sub: 0,
        }
    }

    /// An enabled trace keeping the most recent `capacity` records.
    pub fn bounded(capacity: usize) -> Trace {
        Trace {
            enabled: true,
            capacity,
            records: VecDeque::with_capacity(capacity.min(4096)),
            recorded: 0,
            last_time: SimTime::ZERO,
            last_cause: u64::MAX,
            next_sub: 0,
        }
    }

    /// Full-capture mode: nothing is ever evicted.
    pub fn full() -> Trace {
        Trace::bounded(usize::MAX)
    }

    /// An empty ring with the same enablement/capacity as `self`
    /// (per-shard scratch rings mirroring the world ring).
    pub fn fork_empty(&self) -> Trace {
        if self.enabled {
            Trace::bounded(self.capacity)
        } else {
            Trace::disabled()
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The ring bound (`usize::MAX` in full-capture mode).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event. `detail` only runs when tracing is enabled.
    #[allow(clippy::too_many_arguments)] // flat args keep the disabled path branch-only
    pub fn emit(
        &mut self,
        time: SimTime,
        cause: u64,
        node: NodeId,
        phase: TracePhase,
        cat: &'static str,
        name: &'static str,
        id: u64,
        v: u64,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        let sub = if time == self.last_time && cause == self.last_cause {
            self.next_sub
        } else {
            self.last_time = time;
            self.last_cause = cause;
            0
        };
        self.next_sub = sub + 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.recorded += 1;
        self.records.push_back(TraceEvent {
            time,
            cause,
            sub,
            node,
            phase,
            cat,
            name,
            id,
            v,
            detail: detail(),
        });
    }

    /// The retained records, in processing order.
    pub fn records(&self) -> impl Iterator<Item = &TraceEvent> {
        self.records.iter()
    }

    /// Records in a category, oldest first.
    pub fn in_category<'a>(
        &'a self,
        category: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.records.iter().filter(move |r| r.cat == category)
    }

    /// Total records ever recorded (retained + evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Number of records evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.records.len() as u64
    }

    /// Drain this ring: retained records in order, plus the total
    /// recorded count. Used by the sharded kernel to hand a window's
    /// batch back to the world at a barrier.
    pub fn drain_batch(&mut self) -> (Vec<TraceEvent>, u64) {
        let recorded = self.recorded;
        self.recorded = 0;
        self.last_cause = u64::MAX;
        self.last_time = SimTime::ZERO;
        self.next_sub = 0;
        (self.records.drain(..).collect(), recorded)
    }

    /// Merge per-shard window batches into this ring.
    ///
    /// The batches all cover the same time window (disjoint cause
    /// keys), and every record in them is newer than anything already
    /// retained, so sorting the union by `(time, cause, sub)` and
    /// appending reproduces exactly what a serial run would have
    /// recorded — including which records the bound evicts.
    pub fn absorb_batches(&mut self, batches: Vec<(Vec<TraceEvent>, u64)>) {
        if !self.enabled {
            return;
        }
        let mut all: Vec<TraceEvent> = Vec::new();
        for (batch, recorded) in batches {
            // Evicted-on-shard records are evicted in the merged view
            // too (>= capacity younger same-shard records dominate
            // them), so the recorded count carries over unchanged.
            self.recorded += recorded;
            all.extend(batch);
        }
        all.sort_unstable_by_key(|e| e.key());
        for e in all {
            if self.records.len() == self.capacity {
                self.records.pop_front();
            }
            self.records.push_back(e);
        }
        // Cross-batch appends never continue a dispatch, so reset the
        // sub tracking; the next direct emit starts a new dispatch.
        self.last_cause = u64::MAX;
        self.last_time = SimTime::ZERO;
        self.next_sub = 0;
    }

    /// Render all retained records as lines (for debugging dumps).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(
                out,
                "[{}] {} {}/{} id={} v={} {}",
                r.time, r.node, r.cat, r.name, r.id, r.v, r.detail
            );
        }
        out
    }

    /// Byte-reproducible JSONL export: a meta line, then one object per
    /// record in processing order. Integers only; no floats, no maps.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"meta\":\"sc-trace\",\"recorded\":{},\"dropped\":{}}}",
            self.recorded,
            self.dropped()
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{{\"t_ns\":{},\"cause\":{},\"sub\":{},\"node\":{},\"ph\":\"{}\",\
                 \"cat\":\"{}\",\"name\":\"{}\",\"id\":{},\"v\":{},\"detail\":\"{}\"}}",
                r.time.as_nanos(),
                r.cause,
                r.sub,
                r.node.0,
                r.phase.chrome(),
                r.cat,
                r.name,
                r.id,
                r.v,
                escape_json(&r.detail),
            );
        }
        out
    }

    /// Chrome `trace_event` JSON (load in Perfetto / chrome://tracing).
    /// `ts` is microseconds rendered as a fixed 3-decimal string from
    /// integer nanoseconds — byte-reproducible, no float formatting.
    pub fn to_chrome(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let ns = r.time.as_nanos();
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{}.{:03},\
                 \"pid\":0,\"tid\":{}",
                r.name,
                r.cat,
                r.phase.chrome(),
                ns / 1000,
                ns % 1000,
                r.node.0,
            );
            if r.phase == TracePhase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            let _ = write!(
                out,
                ",\"args\":{{\"cause\":{},\"sub\":{},\"id\":{},\"v\":{}",
                r.cause, r.sub, r.id, r.v
            );
            if !r.detail.is_empty() {
                let _ = write!(out, ",\"detail\":\"{}\"", escape_json(&r.detail));
            }
            out.push_str("}}");
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Minimal JSON string escaping (details are our own text, but keep the
/// exports well-formed whatever they contain).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: &mut Trace, ms: u64, cause: u64, name: &'static str) {
        t.emit(
            SimTime::from_millis(ms),
            cause,
            NodeId(0),
            TracePhase::Instant,
            "c",
            name,
            0,
            0,
            String::new,
        );
    }

    #[test]
    fn disabled_trace_discards() {
        let mut t = Trace::disabled();
        let mut rendered = false;
        t.emit(
            SimTime::ZERO,
            0,
            NodeId(0),
            TracePhase::Instant,
            "x",
            "x",
            0,
            0,
            || {
                rendered = true;
                "msg".into()
            },
        );
        assert!(!rendered, "detail closure must not run when disabled");
        assert_eq!(t.records().count(), 0);
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn bounded_trace_evicts_oldest() {
        let mut t = Trace::bounded(2);
        for i in 0..4u64 {
            ev(&mut t, i, i, "e");
        }
        let times: Vec<u64> = t.records().map(|r| r.time.as_millis()).collect();
        assert_eq!(times, vec![2, 3]);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.recorded(), 4);
    }

    #[test]
    fn sub_indices_count_within_a_dispatch() {
        let mut t = Trace::bounded(10);
        ev(&mut t, 1, 7, "a");
        ev(&mut t, 1, 7, "b");
        ev(&mut t, 1, 9, "c");
        ev(&mut t, 2, 9, "d");
        let subs: Vec<u32> = t.records().map(|r| r.sub).collect();
        assert_eq!(subs, vec![0, 1, 0, 0]);
    }

    #[test]
    fn absorb_batches_matches_serial_order_and_eviction() {
        // Serial reference: one ring sees everything in key order.
        let mut serial = Trace::bounded(3);
        let mut shard_a = Trace::bounded(3);
        let mut shard_b = Trace::bounded(3);
        // Shard A handles causes 10,30; shard B handles 20,40 — all in
        // one window at t=1ms, then t=2ms.
        for (ms, cause) in [(1, 10), (1, 20), (1, 30), (2, 40)] {
            ev(&mut serial, ms, cause, "e");
            ev(&mut serial, ms, cause, "e2");
        }
        for (ms, cause) in [(1, 10), (1, 30)] {
            ev(&mut shard_a, ms, cause, "e");
            ev(&mut shard_a, ms, cause, "e2");
        }
        for (ms, cause) in [(1, 20), (2, 40)] {
            ev(&mut shard_b, ms, cause, "e");
            ev(&mut shard_b, ms, cause, "e2");
        }
        let mut merged = Trace::bounded(3);
        // Restore order is completion order — deliberately "wrong".
        merged.absorb_batches(vec![shard_b.drain_batch(), shard_a.drain_batch()]);
        let got: Vec<_> = merged.records().map(|r| (r.key(), r.name)).collect();
        let want: Vec<_> = serial.records().map(|r| (r.key(), r.name)).collect();
        assert_eq!(got, want);
        assert_eq!(merged.recorded(), serial.recorded());
        assert_eq!(merged.to_jsonl(), serial.to_jsonl());
    }

    #[test]
    fn exports_are_wellformed_and_escape_details() {
        let mut t = Trace::bounded(10);
        t.emit(
            SimTime::from_millis(1),
            5,
            NodeId(3),
            TracePhase::Begin,
            "program",
            "flowmod.batch",
            42,
            7,
            || "q=\"x\"\n".into(),
        );
        t.emit(
            SimTime::from_millis(2),
            6,
            NodeId(3),
            TracePhase::End,
            "program",
            "flowmod.batch",
            42,
            0,
            String::new,
        );
        let jsonl = t.to_jsonl();
        assert!(jsonl.starts_with("{\"meta\":\"sc-trace\",\"recorded\":2,\"dropped\":0}"));
        assert!(jsonl.contains("\\\"x\\\"\\n"));
        let chrome = t.to_chrome();
        assert!(chrome.contains("\"ph\":\"B\""));
        assert!(chrome.contains("\"ts\":1000.000"));
        assert!(chrome.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    }
}
