//! The simulation kernel: event queue, nodes, links, failure injection.
//!
//! Determinism contract: given the same seed and the same sequence of
//! API calls, two [`World`]s process identical event sequences. Events
//! are totally ordered by `(time, origin key)`: the key packs *which
//! stream emitted the event* (stream 0 is the world/control stream,
//! stream `n + 1` is node `n`) with that stream's private emission
//! counter. Keys never depend on how emissions from different streams
//! interleave globally, so the single-threaded executors and the
//! sharded lookahead executor (see [`SchedulerKind::Sharded`]) produce
//! the identical total order — and therefore byte-identical reports —
//! at any shard count.
//!
//! ## Sharded execution
//!
//! With a `Sharded` scheduler, [`World::set_shard_map`] partitions the
//! nodes into regions, each owning a private timer wheel. `run_until`
//! then advances in conservative-lookahead windows: the minimum
//! latency over cross-shard links bounds how far any shard may run
//! ahead of the global minimum before a barrier exchanges boundary
//! frames (a frame needs at least that latency to cross a shard
//! boundary, so nothing inside the window can affect another shard).
//! Control events always run on the main thread with the whole world
//! parked at a barrier; the instant a control is due is drained
//! serially, so control-vs-event interleavings match the reference
//! executor exactly.

use crate::link::{Endpoint, Link, LinkId, LinkParams};
use crate::node::{Action, Ctx, Node, NodeId, PortId, TimerToken};
use crate::sched::{make_scheduler, AnyScheduler, Queued, Scheduler, SchedulerKind, TimerWheel};
use crate::trace::{Trace, TraceEvent};
use sc_net::metrics::Registry;
use sc_net::{Frame, SimDuration, SimTime};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Bits of each origin key holding the per-stream counter; the stream
/// id lives above them. 2^44 events per stream and 2^20 streams are
/// both far beyond any workload here (the counters are per node, and a
/// run is bounded by `run_until_idle`'s event guard anyway).
const ORIGIN_SHIFT: u32 = 44;

/// A monotonic elapsed-time source (readings only ever compared against
/// each other, so the epoch is arbitrary). The kernel itself never
/// reads the wall clock — the sc-check `no-wall-clock` rule forbids it
/// here — so perf accounting only happens when the outermost shell
/// (`sc_bench::timing::wall_clock`) injects a source via
/// [`World::set_wall_clock`]. Everything the simulation computes stays
/// a pure function of the seed either way.
pub type WallClock = fn() -> Duration;

/// Kernel counters (cheap, always on).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct WorldStats {
    pub events_processed: u64,
    pub frames_delivered: u64,
    pub frames_dropped_loss: u64,
    pub frames_dropped_link_down: u64,
    pub frames_dropped_no_link: u64,
    pub frames_dropped_dead_node: u64,
    pub frames_corrupted: u64,
    pub timers_fired: u64,
}

impl WorldStats {
    /// Add a window job's delta (all counters are additive, so totals
    /// are independent of how events interleave across shards).
    fn merge(&mut self, d: &WorldStats) {
        self.events_processed += d.events_processed;
        self.frames_delivered += d.frames_delivered;
        self.frames_dropped_loss += d.frames_dropped_loss;
        self.frames_dropped_link_down += d.frames_dropped_link_down;
        self.frames_dropped_no_link += d.frames_dropped_no_link;
        self.frames_dropped_dead_node += d.frames_dropped_dead_node;
        self.frames_corrupted += d.frames_corrupted;
        self.timers_fired += d.timers_fired;
    }
}

#[derive(Debug)]
pub(crate) enum EventKind {
    /// A frame finishing its flight, to be handed to the receiver. The
    /// payload is a pointer-sized [`Frame`], not an owned byte vector —
    /// the queue moves refcounts, never frame bytes.
    Deliver {
        to: Endpoint,
        frame: Frame,
    },
    /// A frame leaving a node after a processing delay.
    Emit {
        from: Endpoint,
        frame: Frame,
    },
    Timer {
        node: NodeId,
        token: TimerToken,
    },
    LinkStatus {
        to: Endpoint,
        up: bool,
    },
    Control(usize),
}

impl EventKind {
    /// The node whose shard must execute this event; `None` for control
    /// events, which only ever run on the main thread.
    pub(crate) fn target_node(&self) -> Option<usize> {
        match self {
            EventKind::Deliver { to, .. } => Some(to.node.0),
            EventKind::Emit { from, .. } => Some(from.node.0),
            EventKind::Timer { node, .. } => Some(node.0),
            EventKind::LinkStatus { to, .. } => Some(to.node.0),
            EventKind::Control(_) => None,
        }
    }
}

pub(crate) struct Slot {
    node: Option<Box<dyn Node>>,
    name: String,
    alive: bool,
    /// Port index -> link attached there.
    ports: Vec<Option<LinkId>>,
    /// This node's origin-key emission counter (see the module docs).
    emit_ctr: u64,
}

/// A non-allocating stand-in left in `World::nodes` while a window
/// executor owns the real slot.
fn placeholder_slot() -> Slot {
    Slot {
        node: None,
        name: String::new(),
        alive: false,
        ports: Vec::new(),
        emit_ctr: 0,
    }
}

type ControlFn = Box<dyn FnOnce(&mut World)>;

/// The discrete-event world.
pub struct World {
    now: SimTime,
    /// Origin-key counter for stream 0 (the world/control stream).
    world_ctr: u64,
    queue: AnyScheduler,
    nodes: Vec<Slot>,
    links: Vec<Link>,
    /// Root of every link's per-direction fault stream.
    seed: u64,
    trace: Trace,
    /// Counters/histograms registry (sc-trace's metrics half). Disabled
    /// by default; node handlers record through `Ctx::metrics`.
    metrics: Registry,
    stats: WorldStats,
    started: bool,
    controls: Vec<Option<ControlFn>>,
    /// Wall-clock time spent inside the run loops (perf reporting only;
    /// never consulted by the simulation itself). Stays zero until a
    /// shell injects a [`WallClock`].
    wall: Duration,
    wall_clock: Option<WallClock>,
    /// Recycled action buffer handed to each dispatch — one allocation
    /// for the lifetime of the world instead of one per handler call.
    action_buf: Vec<Action>,
}

impl World {
    /// A fresh world with the given RNG seed and tracing disabled,
    /// running on the default timer-wheel scheduler.
    pub fn new(seed: u64) -> World {
        World::with_scheduler(seed, SchedulerKind::default())
    }

    /// A fresh world on an explicitly chosen event scheduler. Every
    /// scheduler — including the sharded one at any shard count —
    /// delivers the identical `(time, origin key)` total order, so this
    /// choice can never change a simulation outcome — the determinism
    /// regression tests compare suite reports across schedulers
    /// byte-for-byte to prove it.
    pub fn with_scheduler(seed: u64, sched: SchedulerKind) -> World {
        World {
            now: SimTime::ZERO,
            world_ctr: 0,
            queue: make_scheduler(sched),
            nodes: Vec::new(),
            links: Vec::new(),
            seed,
            trace: Trace::disabled(),
            metrics: Registry::default(),
            stats: WorldStats::default(),
            started: false,
            controls: Vec::new(),
            wall: Duration::ZERO,
            wall_clock: None,
            action_buf: Vec::new(),
        }
    }

    /// Enable a bounded trace (keep the most recent `capacity` records)
    /// and the metrics registry.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::bounded(capacity);
        self.metrics.enable();
    }

    /// Enable full-capture tracing (nothing evicted) and the registry.
    pub fn enable_trace_full(&mut self) {
        self.trace = Trace::full();
        self.metrics.enable();
    }

    /// Enable only the metrics registry (counters/histograms without
    /// the event ring).
    pub fn enable_metrics(&mut self) {
        self.metrics.enable();
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Kernel counters.
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    /// Number of events currently queued (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Install the shell's monotonic clock; from now on the run loops
    /// accumulate [`World::wall_time`]. Benches and the scenario runner
    /// pass `sc_bench::timing::wall_clock`; worlds without a clock
    /// simply report no perf figures.
    pub fn set_wall_clock(&mut self, clock: WallClock) {
        self.wall_clock = Some(clock);
    }

    /// Wall-clock time accumulated inside [`World::run_until`] /
    /// [`World::run_until_idle`] so far (zero unless a clock was
    /// injected via [`World::set_wall_clock`]).
    pub fn wall_time(&self) -> Duration {
        self.wall
    }

    /// Events processed per wall-clock second across all run calls so
    /// far — the kernel's perf trajectory metric. Wall-clock only; two
    /// runs of the same seed produce identical event streams but
    /// different `events_per_sec`. Returns 0.0 when no wall clock was
    /// injected (perf unmeasured, not infinitely fast).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.stats.events_processed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The trace buffer.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Mutable registry access (drivers fold node-local counters in
    /// before exporting).
    pub fn metrics_mut(&mut self) -> &mut Registry {
        &mut self.metrics
    }

    /// Attach a node; returns its id.
    pub fn add_node(&mut self, node: impl Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Slot {
            name: node.name().to_string(),
            node: Some(Box::new(node)),
            alive: true,
            ports: Vec::new(),
            emit_ctr: 0,
        });
        id
    }

    /// The node's configured name.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Whether the node is alive (not crashed).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes[id.0].alive
    }

    /// Immutable typed access to a node (panics on wrong type — that is
    /// a bug in the experiment driver, not a runtime condition).
    pub fn node<T: Node>(&self, id: NodeId) -> &T {
        self.nodes[id.0]
            .node
            .as_ref()
            .expect("node is currently being dispatched")
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("node {} is not a {}", id, std::any::type_name::<T>()))
    }

    /// Mutable typed access to a node.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0]
            .node
            .as_mut()
            .expect("node is currently being dispatched")
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("node {} is not a {}", id, std::any::type_name::<T>()))
    }

    /// Connect two nodes with a new link; allocates the next free port on
    /// each side and returns `(link, port on a, port on b)`.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        params: LinkParams,
    ) -> (LinkId, PortId, PortId) {
        let pa = PortId(self.nodes[a.0].ports.len());
        let pb = PortId(self.nodes[b.0].ports.len());
        let id = LinkId(self.links.len());
        self.nodes[a.0].ports.push(Some(id));
        self.nodes[b.0].ports.push(Some(id));
        // Each link's fault streams are seeded from (world seed, link
        // index); the link decorrelates its two directions itself.
        let fault_seed = self
            .seed
            .wrapping_add((id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.links.push(Link::new(
            Endpoint { node: a, port: pa },
            Endpoint { node: b, port: pb },
            params,
            fault_seed,
        ));
        (id, pa, pb)
    }

    /// Bring a link up or down. Both endpoints receive an
    /// [`Node::on_link_status`] callback (carrier signal). Idempotent.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        if self.links[link.0].up == up {
            return;
        }
        self.links[link.0].up = up;
        let (a, b) = (self.links[link.0].a, self.links[link.0].b);
        self.push(self.now, EventKind::LinkStatus { to: a, up });
        self.push(self.now, EventKind::LinkStatus { to: b, up });
    }

    /// Whether a link is currently up.
    pub fn is_link_up(&self, link: LinkId) -> bool {
        self.links[link.0].up
    }

    /// The link's current fault/timing parameters.
    pub fn link_params(&self, link: LinkId) -> LinkParams {
        self.links[link.0].params
    }

    /// Replace a link's parameters mid-run (scripted chaos: loss or
    /// corruption bursts, latency shifts). Frames already in flight keep
    /// the timing they were emitted with; future emissions see the new
    /// parameters. Faults stay seeded — which frames are hit is still a
    /// pure function of the world seed.
    pub fn set_link_params(&mut self, link: LinkId, params: LinkParams) {
        self.links[link.0].params = params;
    }

    /// The link attached to `(node, port)`, if any — read-only topology
    /// introspection for observers (e.g. the invariant engine's FIB
    /// walks) that trace frames through the wiring without sending any.
    pub fn link_at(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.nodes.get(node.0)?.ports.get(port.0).copied().flatten()
    }

    /// The far end of the link attached to `(node, port)`, if any.
    pub fn peer_of(&self, node: NodeId, port: PortId) -> Option<Endpoint> {
        let link = &self.links[self.link_at(node, port)?.0];
        let here = Endpoint { node, port };
        link.direction_from(here).map(|(_, peer)| peer)
    }

    /// Crash a node: it stops receiving frames and timers, and all its
    /// links go down (peers see carrier loss).
    pub fn crash_node(&mut self, id: NodeId) {
        self.nodes[id.0].alive = false;
        let attached: Vec<LinkId> = self.nodes[id.0].ports.iter().flatten().copied().collect();
        for l in attached {
            self.set_link_up(l, false);
        }
    }

    /// Is the node slot alive (i.e. not crashed)?
    pub fn node_alive(&self, id: NodeId) -> bool {
        self.nodes[id.0].alive
    }

    /// Revive a crashed node slot with a fresh node object (a process
    /// restart: the replacement boots from its own initial state, not
    /// the crashed instance's memory). All the slot's links come back up
    /// (peers see carrier return), and if the world already started the
    /// replacement's `on_start` hook runs immediately — re-armed timers
    /// and handshakes flow from there. Restarting a slot that is still
    /// alive is a driver bug and panics.
    pub fn restart_node(&mut self, id: NodeId, node: impl Node) {
        assert!(
            !self.nodes[id.0].alive,
            "restart_node on a node that is still alive"
        );
        self.nodes[id.0].name = node.name().to_string();
        self.nodes[id.0].node = Some(Box::new(node));
        self.nodes[id.0].alive = true;
        let attached: Vec<LinkId> = self.nodes[id.0].ports.iter().flatten().copied().collect();
        for l in attached {
            self.set_link_up(l, true);
        }
        if self.started {
            let cause = self.next_world_key();
            self.dispatch(id, cause, |node, ctx| node.on_start(ctx));
        }
    }

    /// Deliver a timer event to a node at `at` from outside (experiment
    /// drivers use this to kick nodes whose schedule is decided after
    /// the world started, e.g. the traffic source's start time).
    pub fn wake_node(&mut self, at: SimTime, node: NodeId, token: TimerToken) {
        assert!(at >= self.now, "wake_node scheduled in the past");
        self.push(at, EventKind::Timer { node, token });
    }

    /// Schedule a scripted control action (e.g. "fail R2 at t=Y") with
    /// full access to the world.
    pub fn schedule(&mut self, at: SimTime, f: impl FnOnce(&mut World) + 'static) {
        assert!(at >= self.now, "control event scheduled in the past");
        let idx = self.controls.len();
        self.controls.push(Some(Box::new(f)));
        self.push(at, EventKind::Control(idx));
    }

    /// Partition the nodes across the sharded scheduler's regions
    /// (`map[node] = shard`, entries clamped to the shard count,
    /// missing entries default to shard 0). No-op on the
    /// single-threaded schedulers — a shard map never changes results,
    /// only which threads compute them.
    ///
    /// Regions connected by a zero-latency link are merged (union-find
    /// on shard ids): such a link admits no lookahead window, so
    /// keeping its endpoints in separate shards would force every
    /// instant onto the serial fallback path.
    pub fn set_shard_map(&mut self, map: Vec<u32>) {
        let AnyScheduler::Sharded(q) = &mut self.queue else {
            return;
        };
        let shards = q.wheels.len() as u32;
        let mut full: Vec<u32> = (0..self.nodes.len())
            .map(|i| map.get(i).copied().unwrap_or(0).min(shards - 1))
            .collect();
        let mut parent: Vec<u32> = (0..shards).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for l in &self.links {
            if l.params.latency.is_zero() {
                let ra = find(&mut parent, full[l.a.node.0]);
                let rb = find(&mut parent, full[l.b.node.0]);
                if ra != rb {
                    // Lower root wins so the merge is order-independent.
                    parent[ra.max(rb) as usize] = ra.min(rb);
                }
            }
        }
        for s in full.iter_mut() {
            *s = find(&mut parent, *s);
        }
        q.set_map(full);
    }

    /// The shard a node is assigned to (always 0 on single-threaded
    /// schedulers).
    pub fn shard_of(&self, id: NodeId) -> usize {
        match &self.queue {
            AnyScheduler::Sharded(q) => q.shard_of_node(id.0),
            _ => 0,
        }
    }

    /// The conservative lookahead horizon: the minimum latency over
    /// links whose endpoints live in different shards (down links
    /// included — they can come back up mid-window via nothing, since
    /// carrier changes are control-driven, but counting them only
    /// shrinks the window and can never break safety). `None` when no
    /// link crosses a shard boundary (or the scheduler is not sharded),
    /// in which case a window may run to the next control time
    /// unbounded.
    pub fn lookahead(&self) -> Option<SimDuration> {
        let AnyScheduler::Sharded(q) = &self.queue else {
            return None;
        };
        let mut min: Option<SimDuration> = None;
        for l in &self.links {
            if q.shard_of_node(l.a.node.0) != q.shard_of_node(l.b.node.0) {
                let lat = l.params.latency;
                min = Some(match min {
                    Some(m) if m <= lat => m,
                    _ => lat,
                });
            }
        }
        min
    }

    /// Queue an event on the world/control stream (origin key 0):
    /// scripted controls, carrier transitions, external wake-ups —
    /// anything pushed from the main thread rather than from a node
    /// handler. Stream-0 keys sort below every node key, so co-timed
    /// control effects always precede co-timed node traffic.
    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_world_key();
        self.queue.push(Queued { time, seq, kind });
    }

    /// Next origin key on stream 0 (also the causal stamp for dispatches
    /// the world performs directly, e.g. `on_start`).
    #[inline]
    fn next_world_key(&mut self) -> u64 {
        let seq = self.world_ctr;
        self.world_ctr += 1;
        seq
    }

    /// Next origin key on node `n`'s stream.
    #[inline]
    fn key_for_node(&mut self, n: usize) -> u64 {
        let slot = &mut self.nodes[n];
        let c = slot.emit_ctr;
        slot.emit_ctr += 1;
        debug_assert!(c < 1 << ORIGIN_SHIFT, "origin counter overflow");
        ((n as u64 + 1) << ORIGIN_SHIFT) | c
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        self.step_inner()
    }

    /// [`World::step`] without the start hook (the run loops call this
    /// so per-event wall-clock accounting stays out of the hot loop).
    fn step_inner(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.stats.events_processed += 1;
        self.handle(ev.seq, ev.kind);
        true
    }

    /// Run until the queue is empty or `deadline` is reached; `now` ends
    /// at `min(deadline, drained)`. Events *at* the deadline run.
    ///
    /// On a multi-shard scheduler this is the parallel path:
    /// conservative-lookahead windows executed across worker threads.
    /// Results — including trace output, which per-shard rings record
    /// and the barrier merge-sorts back into causal order — are
    /// byte-identical either way.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        let t0 = self.wall_clock.map(|clock| clock());
        let windowed = matches!(&self.queue, AnyScheduler::Sharded(q) if q.wheels.len() > 1);
        if windowed {
            self.run_windows(deadline);
        } else {
            while let Some(ev) = self.queue.pop_before(deadline) {
                self.now = ev.time;
                self.stats.events_processed += 1;
                self.handle(ev.seq, ev.kind);
            }
        }
        self.accumulate_wall(t0);
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run for a further `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Drain the queue completely (panics after `max_events` as a
    /// runaway-loop guard). Returns the final virtual time.
    pub fn run_until_idle(&mut self, max_events: u64) -> SimTime {
        self.ensure_started();
        let t0 = self.wall_clock.map(|clock| clock());
        let mut n = 0u64;
        while self.step_inner() {
            n += 1;
            assert!(
                n <= max_events,
                "run_until_idle exceeded {max_events} events"
            );
        }
        self.accumulate_wall(t0);
        self.now
    }

    /// Credit one run loop's elapsed time against [`World::wall_time`]
    /// (`t0` is the loop-entry reading; `None` when no clock is
    /// installed).
    fn accumulate_wall(&mut self, t0: Option<Duration>) {
        if let (Some(clock), Some(t0)) = (self.wall_clock, t0) {
            self.wall += clock().saturating_sub(t0);
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let cause = self.next_world_key();
            self.dispatch(NodeId(i), cause, |node, ctx| node.on_start(ctx));
        }
    }

    /// Process one event; `cause` is its origin key (the causal stamp
    /// for every trace record the dispatch emits).
    fn handle(&mut self, cause: u64, kind: EventKind) {
        match kind {
            EventKind::Deliver { to, frame } => {
                if !self.nodes[to.node.0].alive {
                    self.stats.frames_dropped_dead_node += 1;
                    return;
                }
                self.stats.frames_delivered += 1;
                self.dispatch(to.node, cause, |node, ctx| {
                    node.on_frame(ctx, to.port, frame)
                });
            }
            EventKind::Emit { from, frame } => {
                self.emit(from, frame);
            }
            EventKind::Timer { node, token } => {
                if !self.nodes[node.0].alive {
                    return;
                }
                self.stats.timers_fired += 1;
                self.dispatch(node, cause, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::LinkStatus { to, up } => {
                if !self.nodes[to.node.0].alive {
                    return;
                }
                self.dispatch(to.node, cause, |n, ctx| n.on_link_status(ctx, to.port, up));
            }
            EventKind::Control(idx) => {
                let f = self.controls[idx]
                    .take()
                    .expect("control event executed twice");
                f(self);
            }
        }
    }

    /// Put a frame onto the wire from `from`, applying link faults and
    /// timing. Called at the frame's emission time.
    fn emit(&mut self, from: Endpoint, frame: Frame) {
        let Some(Some(link_id)) = self.nodes[from.node.0].ports.get(from.port.0).copied() else {
            self.stats.frames_dropped_no_link += 1;
            return;
        };
        let link = &mut self.links[link_id.0];
        if !link.up {
            self.stats.frames_dropped_link_down += 1;
            return;
        }
        let (dir, peer) = link
            .direction_from(from)
            .expect("port/link wiring inconsistent");
        // Fault injection from the link direction's counted stream.
        let mut frame = frame;
        let corrupted = match link.apply_faults(dir, &mut frame) {
            None => {
                self.stats.frames_dropped_loss += 1;
                return;
            }
            Some(c) => c,
        };
        if corrupted {
            self.stats.frames_corrupted += 1;
        }
        let arrival = link.schedule_arrival(dir, self.now, frame.len());
        // The delivery rides the *sender's* origin stream: its key is a
        // pure function of which node emitted and how many times, never
        // of global interleaving — the root of cross-executor identity.
        let seq = self.key_for_node(from.node.0);
        self.queue.push(Queued {
            time: arrival,
            seq,
            kind: EventKind::Deliver { to: peer, frame },
        });
    }

    /// Invoke a node handler and apply the actions it requested.
    fn dispatch(&mut self, id: NodeId, cause: u64, f: impl FnOnce(&mut dyn Node, &mut Ctx)) {
        let mut node = self.nodes[id.0]
            .node
            .take()
            .expect("re-entrant dispatch on one node");
        let mut ctx = Ctx {
            now: self.now,
            node: id,
            cause,
            // Dispatch never nests (handlers see a Ctx, not the world),
            // so the buffer is free to lend out here.
            actions: std::mem::take(&mut self.action_buf),
            trace: &mut self.trace,
            metrics: &mut self.metrics,
        };
        f(node.as_mut(), &mut ctx);
        let mut actions = std::mem::take(&mut ctx.actions);
        self.nodes[id.0].node = Some(node);
        for action in actions.drain(..) {
            match action {
                Action::SendFrame { port, frame, at } => {
                    let from = Endpoint { node: id, port };
                    if at <= self.now {
                        self.emit(from, frame);
                    } else {
                        let seq = self.key_for_node(id.0);
                        self.queue.push(Queued {
                            time: at,
                            seq,
                            kind: EventKind::Emit { from, frame },
                        });
                    }
                }
                Action::SetTimer { at, token } => {
                    let seq = self.key_for_node(id.0);
                    self.queue.push(Queued {
                        time: at.max(self.now),
                        seq,
                        kind: EventKind::Timer { node: id, token },
                    });
                }
            }
        }
        self.action_buf = actions;
    }

    /// Full-length, clamped copy of the current shard map (missing
    /// entries — nodes added after `set_shard_map` — default to 0).
    fn snapshot_shard_map(&self) -> Arc<Vec<u32>> {
        let AnyScheduler::Sharded(q) = &self.queue else {
            unreachable!("snapshot_shard_map on a non-sharded world")
        };
        let shards = q.wheels.len() as u32;
        Arc::new(
            (0..self.nodes.len())
                .map(|i| q.shard_of.get(i).copied().unwrap_or(0).min(shards - 1))
                .collect(),
        )
    }

    /// The parallel run loop: conservative-lookahead windows.
    ///
    /// Each iteration peeks the global minimum `t_min`, then either
    /// drains the instant serially (a control is due at `t_min`, or a
    /// zero-latency cross-shard link leaves no lookahead) or opens the
    /// window `[t_min, h]` with `h = min(t_min + L - 1ns, t_ctl - 1ns,
    /// deadline)` — `L` the minimum cross-shard latency, `t_ctl` the
    /// next control time. Every shard with an event inside the window
    /// runs it in isolation: a cross-shard frame needs `>= L` of wire
    /// time, so nothing produced inside the window can land in another
    /// shard before `h`; boundary deliveries buffer in per-shard
    /// outboxes and are injected (with the origin keys they were born
    /// with) at the barrier.
    fn run_windows(&mut self, deadline: SimTime) {
        let shards = match &self.queue {
            AnyScheduler::Sharded(q) => q.wheels.len(),
            _ => unreachable!(),
        };
        let one = SimDuration::from_nanos(1);
        let mut map = self.snapshot_shard_map();
        let mut members = compute_members(&map, shards);
        let mut scratches: Vec<Option<ShardScratch>> =
            (0..shards).map(|s| Some(ShardScratch::new(s))).collect();
        let mut active: Vec<usize> = Vec::with_capacity(shards);
        let mut boundary: Vec<Queued> = Vec::new();
        // Per-window trace batches from the shard rings; merge-sorted
        // into the world ring at each barrier (completion order of the
        // workers must not matter).
        let mut trace_batches: Vec<(Vec<TraceEvent>, u64)> = Vec::new();
        std::thread::scope(|scope| {
            // One worker per non-inline shard, spawned once for the
            // whole run — a window is a channel round-trip, not a
            // thread spawn. Workers are anonymous: each takes whatever
            // job it is handed (the job knows its shard).
            let mut job_txs: Vec<mpsc::Sender<ShardScratch>> = Vec::new();
            let (done_tx, done_rx) = mpsc::channel::<ShardScratch>();
            for _ in 1..shards {
                let (tx, rx) = mpsc::channel::<ShardScratch>();
                job_txs.push(tx);
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    while let Ok(mut job) = rx.recv() {
                        job.run();
                        if done_tx.send(job).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(done_tx);
            while let Some((t_min, _)) = self.queue.peek() {
                if t_min > deadline {
                    break;
                }
                let t_ctl = match &mut self.queue {
                    AnyScheduler::Sharded(q) => q.ctl.peek().map(|(t, _)| t),
                    _ => unreachable!(),
                };
                let lookahead = self.lookahead();
                if t_ctl == Some(t_min) || lookahead.is_some_and(|l| l.is_zero()) {
                    // A control is due at the instant (or a mid-run
                    // latency change collapsed the horizon): drain the
                    // whole instant on the main thread so control-vs-
                    // event interleaving matches the reference exactly.
                    self.metrics.inc("kernel.serial_instants");
                    while let Some((t, _)) = self.queue.peek() {
                        if t != t_min {
                            break;
                        }
                        let ev = self.queue.pop().expect("peeked event vanished");
                        self.now = ev.time;
                        self.stats.events_processed += 1;
                        self.handle(ev.seq, ev.kind);
                    }
                    // Controls may add nodes or repartition: refresh.
                    map = self.snapshot_shard_map();
                    members = compute_members(&map, shards);
                    continue;
                }
                let mut h = deadline;
                if let Some(l) = lookahead {
                    h = h.min(t_min + l - one);
                }
                if let Some(tc) = t_ctl {
                    h = h.min(tc - one);
                }
                active.clear();
                if let AnyScheduler::Sharded(q) = &mut self.queue {
                    for s in 0..shards {
                        let w = q.wheels[s].as_mut().expect("wheel missing at barrier");
                        if let Some((t, _)) = w.peek() {
                            if t <= h {
                                active.push(s);
                            }
                        }
                    }
                }
                if self.metrics.is_enabled() {
                    self.metrics.inc("kernel.windows");
                    self.metrics
                        .observe("kernel.window_ns", (h - t_min).as_nanos());
                    self.metrics
                        .observe("kernel.active_shards", active.len() as u64);
                    self.metrics
                        .observe("kernel.queue_depth", self.queue.len() as u64);
                }
                if active.len() <= 1 {
                    // One busy shard (or an unbounded horizon with all
                    // activity local): no isolation needed — drain on
                    // the main world directly.
                    while let Some(ev) = self.queue.pop_before(h) {
                        self.now = ev.time;
                        self.stats.events_processed += 1;
                        self.handle(ev.seq, ev.kind);
                    }
                } else {
                    for (j, &s) in active.iter().enumerate().skip(1) {
                        let mut sc = scratches[s].take().expect("scratch in flight");
                        self.fill_scratch(&mut sc, t_min, h, &map, &members);
                        job_txs[j - 1].send(sc).expect("window worker died");
                    }
                    let inline = active[0];
                    let mut sc0 = scratches[inline].take().expect("scratch in flight");
                    self.fill_scratch(&mut sc0, t_min, h, &map, &members);
                    sc0.run();
                    self.restore_scratch(
                        &mut sc0,
                        &map,
                        &members,
                        &mut boundary,
                        &mut trace_batches,
                    );
                    scratches[inline] = Some(sc0);
                    for _ in 1..active.len() {
                        let mut sc = done_rx.recv().expect("window worker died");
                        self.restore_scratch(
                            &mut sc,
                            &map,
                            &members,
                            &mut boundary,
                            &mut trace_batches,
                        );
                        let s = sc.my_shard;
                        scratches[s] = Some(sc);
                    }
                    // Inject boundary deliveries only once every wheel
                    // is back at the barrier — an outbox event may
                    // target any shard.
                    for ev in boundary.drain(..) {
                        self.queue.push(ev);
                    }
                    // Merge the window's shard-ring batches into the
                    // world ring in causal order (worker completion
                    // order is irrelevant after the sort).
                    if !trace_batches.is_empty() {
                        self.trace
                            .absorb_batches(std::mem::take(&mut trace_batches));
                    }
                }
                self.now = h;
            }
            drop(job_txs);
        });
    }

    /// Hand one shard's state to a window job: its wheel, its slots
    /// (moved, placeholders left behind), a copy of every link, and the
    /// window bounds.
    fn fill_scratch(
        &mut self,
        sc: &mut ShardScratch,
        t_min: SimTime,
        horizon: SimTime,
        map: &Arc<Vec<u32>>,
        members: &[Vec<usize>],
    ) {
        sc.now = t_min;
        sc.horizon = horizon;
        sc.stats = WorldStats::default();
        sc.shard_of = Arc::clone(map);
        if sc.trace.is_enabled() != self.trace.is_enabled()
            || sc.trace.capacity() != self.trace.capacity()
        {
            sc.trace = self.trace.fork_empty();
        }
        if self.metrics.is_enabled() && !sc.metrics.is_enabled() {
            sc.metrics.enable();
        }
        sc.wheel = match &mut self.queue {
            AnyScheduler::Sharded(q) => q.wheels[sc.my_shard].take(),
            _ => unreachable!(),
        };
        debug_assert!(sc.wheel.is_some());
        sc.nodes.resize_with(self.nodes.len(), || None);
        for &i in &members[sc.my_shard] {
            sc.nodes[i] = Some(std::mem::replace(&mut self.nodes[i], placeholder_slot()));
        }
        sc.links.clear();
        sc.links.extend_from_slice(&self.links);
    }

    /// Take a completed window job back: wheel and slots return, link
    /// state merges by direction ownership (a shard only ever advances
    /// the `busy_until`/fault stream of directions it *sends* on), the
    /// stats delta adds, and boundary deliveries drain into `boundary`
    /// for injection once every wheel is back at the barrier.
    fn restore_scratch(
        &mut self,
        sc: &mut ShardScratch,
        map: &Arc<Vec<u32>>,
        members: &[Vec<usize>],
        boundary: &mut Vec<Queued>,
        trace_batches: &mut Vec<(Vec<TraceEvent>, u64)>,
    ) {
        match &mut self.queue {
            AnyScheduler::Sharded(q) => q.wheels[sc.my_shard] = sc.wheel.take(),
            _ => unreachable!(),
        }
        for &i in &members[sc.my_shard] {
            self.nodes[i] = sc.nodes[i].take().expect("slot lost in window");
        }
        let me = sc.my_shard as u32;
        for (li, l) in self.links.iter_mut().enumerate() {
            let src = &sc.links[li];
            if map[l.a.node.0] == me {
                l.busy_until[0] = src.busy_until[0];
                l.fault_state[0] = src.fault_state[0];
            }
            if map[l.b.node.0] == me {
                l.busy_until[1] = src.busy_until[1];
                l.fault_state[1] = src.fault_state[1];
            }
        }
        self.stats.merge(&sc.stats);
        if self.metrics.is_enabled() {
            self.metrics
                .observe("kernel.shard_window_events", sc.stats.events_processed);
            self.metrics.merge(&sc.metrics);
            sc.metrics.clear();
        }
        if sc.trace.is_enabled() {
            trace_batches.push(sc.trace.drain_batch());
        }
        boundary.append(&mut sc.outbox);
    }
}

/// `shard -> member node indices` for the current map.
fn compute_members(map: &Arc<Vec<u32>>, shards: usize) -> Vec<Vec<usize>> {
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (i, &s) in map.iter().enumerate() {
        members[s as usize].push(i);
    }
    members
}

/// One shard's working set for a lookahead window: the shard's wheel
/// and node slots (moved in, moved back at the barrier), a copy of the
/// link table, and a private stats delta. The event loop here mirrors
/// `World::handle`/`World::emit`/`World::dispatch` exactly — same
/// origin-key assignment, same fault streams — minus control events,
/// which never route to a shard. The scratch persists across windows
/// (its buffers are the per-shard allocations), shuttling between the
/// main thread and a worker over channels.
struct ShardScratch {
    my_shard: usize,
    now: SimTime,
    /// Inclusive upper bound of the current window.
    horizon: SimTime,
    wheel: Option<TimerWheel>,
    /// Full-length; `Some` only at this shard's member indices.
    nodes: Vec<Option<Slot>>,
    links: Vec<Link>,
    shard_of: Arc<Vec<u32>>,
    stats: WorldStats,
    /// Deliveries to foreign shards, all strictly beyond `horizon` —
    /// that is the lookahead guarantee.
    outbox: Vec<Queued>,
    action_buf: Vec<Action>,
    /// Per-shard trace ring: mirrors the world ring's mode, drained at
    /// every barrier and merge-sorted back into causal order.
    trace: Trace,
    /// Per-shard metrics delta; additively merged at every barrier.
    metrics: Registry,
}

impl ShardScratch {
    fn new(my_shard: usize) -> ShardScratch {
        ShardScratch {
            my_shard,
            now: SimTime::ZERO,
            horizon: SimTime::ZERO,
            wheel: None,
            nodes: Vec::new(),
            links: Vec::new(),
            shard_of: Arc::new(Vec::new()),
            stats: WorldStats::default(),
            outbox: Vec::new(),
            action_buf: Vec::new(),
            trace: Trace::disabled(),
            metrics: Registry::default(),
        }
    }

    #[inline]
    fn shard_of_node(&self, n: usize) -> usize {
        self.shard_of.get(n).copied().unwrap_or(0) as usize
    }

    #[inline]
    fn slot(&mut self, n: usize) -> &mut Slot {
        self.nodes[n]
            .as_mut()
            .expect("event routed to a foreign shard")
    }

    /// Drain this shard's wheel up to (and including) the horizon.
    fn run(&mut self) {
        loop {
            let Some(ev) = self
                .wheel
                .as_mut()
                .expect("window job without a wheel")
                .pop_before(self.horizon)
            else {
                break;
            };
            self.now = ev.time;
            self.stats.events_processed += 1;
            self.handle(ev.seq, ev.kind);
        }
    }

    fn handle(&mut self, cause: u64, kind: EventKind) {
        match kind {
            EventKind::Deliver { to, frame } => {
                if !self.slot(to.node.0).alive {
                    self.stats.frames_dropped_dead_node += 1;
                    return;
                }
                self.stats.frames_delivered += 1;
                self.dispatch(to.node, cause, |node, ctx| {
                    node.on_frame(ctx, to.port, frame)
                });
            }
            EventKind::Emit { from, frame } => {
                self.emit(from, frame);
            }
            EventKind::Timer { node, token } => {
                if !self.slot(node.0).alive {
                    return;
                }
                self.stats.timers_fired += 1;
                self.dispatch(node, cause, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::LinkStatus { to, up } => {
                if !self.slot(to.node.0).alive {
                    return;
                }
                self.dispatch(to.node, cause, |n, ctx| n.on_link_status(ctx, to.port, up));
            }
            EventKind::Control(_) => {
                unreachable!("control event routed to a shard wheel")
            }
        }
    }

    #[inline]
    fn key_for_node(&mut self, n: usize) -> u64 {
        let slot = self.slot(n);
        let c = slot.emit_ctr;
        slot.emit_ctr += 1;
        debug_assert!(c < 1 << ORIGIN_SHIFT, "origin counter overflow");
        ((n as u64 + 1) << ORIGIN_SHIFT) | c
    }

    fn push(&mut self, ev: Queued) {
        let target = ev.kind.target_node().expect("shard pushed a control event");
        if self.shard_of_node(target) == self.my_shard {
            self.wheel
                .as_mut()
                .expect("window job without a wheel")
                .push(ev);
        } else {
            debug_assert!(
                ev.time > self.horizon,
                "cross-shard event inside the lookahead window"
            );
            self.outbox.push(ev);
        }
    }

    fn emit(&mut self, from: Endpoint, frame: Frame) {
        let Some(Some(link_id)) = self.slot(from.node.0).ports.get(from.port.0).copied() else {
            self.stats.frames_dropped_no_link += 1;
            return;
        };
        let link = &mut self.links[link_id.0];
        if !link.up {
            self.stats.frames_dropped_link_down += 1;
            return;
        }
        let (dir, peer) = link
            .direction_from(from)
            .expect("port/link wiring inconsistent");
        let mut frame = frame;
        let corrupted = match link.apply_faults(dir, &mut frame) {
            None => {
                self.stats.frames_dropped_loss += 1;
                return;
            }
            Some(c) => c,
        };
        if corrupted {
            self.stats.frames_corrupted += 1;
        }
        let arrival = link.schedule_arrival(dir, self.now, frame.len());
        let seq = self.key_for_node(from.node.0);
        self.push(Queued {
            time: arrival,
            seq,
            kind: EventKind::Deliver { to: peer, frame },
        });
    }

    fn dispatch(&mut self, id: NodeId, cause: u64, f: impl FnOnce(&mut dyn Node, &mut Ctx)) {
        let mut node = self
            .slot(id.0)
            .node
            .take()
            .expect("re-entrant dispatch on one node");
        let mut ctx = Ctx {
            now: self.now,
            node: id,
            cause,
            actions: std::mem::take(&mut self.action_buf),
            trace: &mut self.trace,
            metrics: &mut self.metrics,
        };
        f(node.as_mut(), &mut ctx);
        let mut actions = std::mem::take(&mut ctx.actions);
        self.slot(id.0).node = Some(node);
        for action in actions.drain(..) {
            match action {
                Action::SendFrame { port, frame, at } => {
                    let from = Endpoint { node: id, port };
                    if at <= self.now {
                        self.emit(from, frame);
                    } else {
                        let seq = self.key_for_node(id.0);
                        self.push(Queued {
                            time: at,
                            seq,
                            kind: EventKind::Emit { from, frame },
                        });
                    }
                }
                Action::SetTimer { at, token } => {
                    let seq = self.key_for_node(id.0);
                    self.push(Queued {
                        time: at.max(self.now),
                        seq,
                        kind: EventKind::Timer { node: id, token },
                    });
                }
            }
        }
        self.action_buf = actions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// A node that echoes every frame back out the same port after a
    /// configurable delay and counts what it saw.
    struct Echo {
        name: String,
        delay: SimDuration,
        seen: Vec<(SimTime, PortId, Frame)>,
        link_events: Vec<(PortId, bool)>,
        timer_log: Vec<(SimTime, u64)>,
    }

    impl Echo {
        fn new(name: &str, delay: SimDuration) -> Echo {
            Echo {
                name: name.into(),
                delay,
                seen: Vec::new(),
                link_events: Vec::new(),
                timer_log: Vec::new(),
            }
        }
    }

    impl Node for Echo {
        fn name(&self) -> &str {
            &self.name
        }
        fn on_frame(&mut self, ctx: &mut Ctx, port: PortId, frame: Frame) {
            ctx.trace_instant(
                "test",
                "echo.frame",
                port.0 as u64,
                frame.len() as u64,
                || format!("{:?}", &frame[..frame.len().min(2)]),
            );
            ctx.metrics().inc("test.frames");
            self.seen.push((ctx.now(), port, frame.clone()));
            if !frame.is_empty() && frame[0] == b'E' {
                ctx.send_frame_after(port, frame, self.delay);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
            self.timer_log.push((ctx.now(), token.0));
        }
        fn on_link_status(&mut self, _ctx: &mut Ctx, port: PortId, up: bool) {
            self.link_events.push((port, up));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A node that fires a frame at start and re-arms a periodic timer.
    struct Ticker {
        name: String,
        period: SimDuration,
        ticks: u32,
        max_ticks: u32,
        out_port: PortId,
    }

    impl Node for Ticker {
        fn name(&self) -> &str {
            &self.name
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer_after(self.period, TimerToken(1));
        }
        fn on_frame(&mut self, _ctx: &mut Ctx, _port: PortId, _frame: Frame) {}
        fn on_timer(&mut self, ctx: &mut Ctx, _token: TimerToken) {
            self.ticks += 1;
            ctx.trace_instant("test", "tick", 0, self.ticks as u64, String::new);
            ctx.metrics().inc("test.ticks");
            ctx.send_frame(self.out_port, vec![b'T', self.ticks as u8]);
            if self.ticks < self.max_ticks {
                ctx.set_timer_after(self.period, TimerToken(1));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn frame_flies_with_latency() {
        let mut w = World::new(1);
        let a = w.add_node(Echo::new("a", SimDuration::ZERO));
        let b = w.add_node(Echo::new("b", SimDuration::ZERO));
        let (_l, pa, _pb) = w.connect(a, b, LinkParams::with_latency(SimDuration::from_micros(10)));
        w.schedule(SimTime::from_millis(1), move |w| {
            // Inject a frame as if `a` sent it.
            let from = Endpoint { node: a, port: pa };
            w.emit(from, vec![b'X'].into());
        });
        w.run_until_idle(1000);
        let b_node = w.node::<Echo>(b);
        assert_eq!(b_node.seen.len(), 1);
        assert_eq!(
            b_node.seen[0].0,
            SimTime::from_millis(1) + SimDuration::from_micros(10)
        );
    }

    #[test]
    fn ping_pong_terminates_and_orders() {
        let mut w = World::new(2);
        let t = w.add_node(Ticker {
            name: "ticker".into(),
            period: SimDuration::from_millis(10),
            ticks: 0,
            max_ticks: 5,
            out_port: PortId(0),
        });
        let sink = w.add_node(Echo::new("sink", SimDuration::ZERO));
        w.connect(t, sink, LinkParams::default());
        w.run_until_idle(10_000);
        let s = w.node::<Echo>(sink);
        assert_eq!(s.seen.len(), 5);
        // Strictly increasing arrival times, FIFO payload order.
        for pair in s.seen.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
        let seq: Vec<u8> = s.seen.iter().map(|(_, _, f)| f[1]).collect();
        assert_eq!(seq, vec![1, 2, 3, 4, 5]);
        assert_eq!(w.node::<Ticker>(t).ticks, 5);
    }

    #[test]
    fn link_down_drops_and_signals_carrier() {
        let mut w = World::new(3);
        let a = w.add_node(Ticker {
            name: "ticker".into(),
            period: SimDuration::from_millis(10),
            ticks: 0,
            max_ticks: 10,
            out_port: PortId(0),
        });
        let b = w.add_node(Echo::new("sink", SimDuration::ZERO));
        let (l, _pa, _pb) = w.connect(a, b, LinkParams::default());
        // Cut the link mid-run.
        w.schedule(SimTime::from_millis(45), move |w| w.set_link_up(l, false));
        w.run_until_idle(10_000);
        let s = w.node::<Echo>(b);
        assert_eq!(
            s.seen.len(),
            4,
            "ticks at 10,20,30,40 arrive; later ones dropped"
        );
        assert_eq!(s.link_events, vec![(PortId(0), false)]);
        assert_eq!(w.stats().frames_dropped_link_down, 6);
    }

    #[test]
    fn crash_node_stops_delivery_and_downs_links() {
        let mut w = World::new(4);
        let a = w.add_node(Ticker {
            name: "ticker".into(),
            period: SimDuration::from_millis(10),
            ticks: 0,
            max_ticks: 3,
            out_port: PortId(0),
        });
        let b = w.add_node(Echo::new("victim", SimDuration::ZERO));
        let c = w.add_node(Echo::new("peer-of-victim", SimDuration::ZERO));
        w.connect(a, b, LinkParams::default());
        let (_l2, _pb2, _pc) = w.connect(b, c, LinkParams::default());
        w.schedule(SimTime::from_millis(15), move |w| w.crash_node(b));
        w.run_until_idle(10_000);
        assert!(!w.is_alive(b));
        // Victim saw only the first tick.
        assert_eq!(w.node::<Echo>(b).seen.len(), 1);
        // The victim's peer observed carrier loss on their shared link.
        assert_eq!(w.node::<Echo>(c).link_events, vec![(PortId(0), false)]);
    }

    #[test]
    fn restart_node_revives_links_and_reruns_start() {
        let mut w = World::new(10);
        let a = w.add_node(Ticker {
            name: "ticker".into(),
            period: SimDuration::from_millis(10),
            ticks: 0,
            max_ticks: 8,
            out_port: PortId(0),
        });
        let b = w.add_node(Echo::new("victim", SimDuration::ZERO));
        w.connect(a, b, LinkParams::default());
        w.schedule(SimTime::from_millis(15), move |w| w.crash_node(b));
        w.schedule(SimTime::from_millis(45), move |w| {
            w.restart_node(b, Echo::new("victim", SimDuration::ZERO));
        });
        w.run_until_idle(10_000);
        assert!(w.is_alive(b));
        // The replacement boots from fresh state: it saw only the ticks
        // after the restart (50, 60, 70, 80), not the pre-crash one.
        assert_eq!(w.node::<Echo>(b).seen.len(), 4);
        // The replacement observed the carrier-return edge of its own
        // revival (links come back up as part of the restart).
        assert_eq!(w.node::<Echo>(b).link_events, vec![(PortId(0), true)]);
    }

    #[test]
    fn set_link_params_applies_future_faults_only() {
        let mut w = World::new(11);
        let a = w.add_node(Ticker {
            name: "ticker".into(),
            period: SimDuration::from_millis(1),
            ticks: 0,
            max_ticks: 100,
            out_port: PortId(0),
        });
        let b = w.add_node(Echo::new("sink", SimDuration::ZERO));
        let (l, _pa, _pb) = w.connect(a, b, LinkParams::default());
        // Total loss for the middle half of the run, then revert.
        w.schedule(SimTime::from_millis(25), move |w| {
            let p = w.link_params(l);
            w.set_link_params(l, LinkParams { loss: 1.0, ..p });
        });
        w.schedule(SimTime::from_millis(75), move |w| {
            let p = w.link_params(l);
            w.set_link_params(l, LinkParams { loss: 0.0, ..p });
        });
        w.run_until_idle(10_000);
        let delivered = w.node::<Echo>(b).seen.len();
        assert_eq!(delivered, 50, "ticks 1..=25 and 76..=100 arrive");
        assert_eq!(w.stats().frames_dropped_loss, 50);
    }

    #[test]
    fn loss_and_corruption_are_seeded_and_counted() {
        let run = |seed: u64| {
            let mut w = World::new(seed);
            let a = w.add_node(Ticker {
                name: "ticker".into(),
                period: SimDuration::from_millis(1),
                ticks: 0,
                max_ticks: 1000,
                out_port: PortId(0),
            });
            let b = w.add_node(Echo::new("sink", SimDuration::ZERO));
            w.connect(
                a,
                b,
                LinkParams {
                    loss: 0.2,
                    corrupt: 0.1,
                    ..LinkParams::default()
                },
            );
            w.run_until_idle(100_000);
            let delivered = w.node::<Echo>(b).seen.len();
            (delivered, w.stats())
        };
        let (d1, s1) = run(42);
        let (d2, s2) = run(42);
        assert_eq!(d1, d2, "same seed, same outcome");
        assert_eq!(s1, s2);
        assert!(s1.frames_dropped_loss > 100 && s1.frames_dropped_loss < 300);
        assert!(s1.frames_corrupted > 30 && s1.frames_corrupted < 200);
        let (d3, _) = run(43);
        assert_ne!(d1, d3, "different seed, different fault pattern");
    }

    #[test]
    fn bandwidth_serialization_orders_backlog() {
        // Two frames sent simultaneously on a 1 Gb/s link arrive
        // back-to-back, separated by the serialization delay.
        let mut w = World::new(5);
        let a = w.add_node(Echo::new("a", SimDuration::ZERO));
        let b = w.add_node(Echo::new("b", SimDuration::ZERO));
        let (_l, pa, _pb) = w.connect(a, b, LinkParams::gigabit(SimDuration::from_micros(5)));
        w.schedule(SimTime::from_millis(1), move |w| {
            let from = Endpoint { node: a, port: pa };
            w.emit(from, vec![0u8; 64].into());
            w.emit(from, vec![1u8; 64].into());
        });
        w.run_until_idle(100);
        let seen = &w.node::<Echo>(b).seen;
        assert_eq!(seen.len(), 2);
        let gap = seen[1].0 - seen[0].0;
        assert_eq!(gap, SimDuration::from_nanos(512));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut w = World::new(6);
        let _t = w.add_node(Ticker {
            name: "ticker".into(),
            period: SimDuration::from_millis(10),
            ticks: 0,
            max_ticks: 100,
            out_port: PortId(0),
        });
        w.run_until(SimTime::from_millis(35));
        assert_eq!(w.now(), SimTime::from_millis(35));
        // Only ticks at 10,20,30 processed so far.
        assert_eq!(w.stats().timers_fired, 3);
        w.run_until(SimTime::from_millis(100));
        assert_eq!(w.stats().timers_fired, 10);
    }

    #[test]
    fn control_events_interleave_deterministically() {
        let mut w = World::new(7);
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for i in 0..5u64 {
            let order = order.clone();
            w.schedule(SimTime::from_millis(10), move |_w| {
                order.borrow_mut().push(i);
            });
        }
        w.run_until_idle(100);
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4], "FIFO at equal time");
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn runaway_guard_trips() {
        struct Forever;
        impl Node for Forever {
            fn name(&self) -> &str {
                "forever"
            }
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer_after(SimDuration::from_nanos(1), TimerToken(0));
            }
            fn on_frame(&mut self, _: &mut Ctx, _: PortId, _: Frame) {}
            fn on_timer(&mut self, ctx: &mut Ctx, _: TimerToken) {
                ctx.set_timer_after(SimDuration::from_nanos(1), TimerToken(0));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(8);
        w.add_node(Forever);
        w.run_until_idle(100);
    }

    /// Six ticker->sink pairs, every pair's link crossing a shard
    /// boundary, one lossy link, one scripted mid-run carrier cut: the
    /// canonical cross-executor workload.
    fn sharded_world(kind: SchedulerKind) -> (World, Vec<NodeId>) {
        let mut w = World::with_scheduler(77, kind);
        let mut sinks = Vec::new();
        let mut map = Vec::new();
        for i in 0..6u32 {
            let t = w.add_node(Ticker {
                name: format!("t{i}"),
                period: SimDuration::from_micros(40),
                ticks: 0,
                max_ticks: 200,
                out_port: PortId(0),
            });
            let s = w.add_node(Echo::new(&format!("s{i}"), SimDuration::ZERO));
            let params = LinkParams {
                latency: SimDuration::from_micros(30),
                loss: if i == 0 { 0.1 } else { 0.0 },
                ..LinkParams::default()
            };
            let (l, _, _) = w.connect(t, s, params);
            map.push(i % 3); // ticker's shard
            map.push((i + 1) % 3); // sink's shard: the link crosses
            if i == 2 {
                w.schedule(SimTime::from_millis(3), move |w| w.set_link_up(l, false));
            }
            sinks.push(s);
        }
        w.set_shard_map(map);
        (w, sinks)
    }

    #[test]
    fn sharded_execution_matches_reference() {
        let run = |kind| {
            let (mut w, sinks) = sharded_world(kind);
            w.run_until(SimTime::from_millis(10));
            let seen: Vec<Vec<(SimTime, PortId, Frame)>> = sinks
                .iter()
                .map(|&s| w.node::<Echo>(s).seen.clone())
                .collect();
            (w.stats(), seen)
        };
        let (ref_stats, ref_seen) = run(SchedulerKind::ReferenceHeap);
        assert!(ref_stats.frames_dropped_loss > 0, "loss stream exercised");
        assert!(
            ref_stats.frames_dropped_link_down > 0,
            "carrier cut exercised"
        );
        for shards in [1usize, 2, 3, 5] {
            let (stats, seen) = run(SchedulerKind::Sharded { shards });
            assert_eq!(ref_stats, stats, "stats diverge at {shards} shards");
            assert_eq!(ref_seen, seen, "deliveries diverge at {shards} shards");
        }
    }

    /// The sc-trace determinism contract at the kernel level: JSONL and
    /// Chrome exports (and node-level metrics) are byte-identical across
    /// the reference executor and the sharded executor at any shard
    /// count — including ring eviction, exercised by the tight bound.
    #[test]
    fn sharded_trace_exports_match_reference() {
        let run = |kind, capacity| {
            let (mut w, _) = sharded_world(kind);
            w.enable_trace(capacity);
            w.run_until(SimTime::from_millis(10));
            (
                w.trace().to_jsonl(),
                w.trace().to_chrome(),
                (
                    w.metrics().counter("test.ticks"),
                    w.metrics().counter("test.frames"),
                ),
            )
        };
        for capacity in [usize::MAX, 100] {
            let (ref_jsonl, ref_chrome, ref_ctrs) = run(SchedulerKind::ReferenceHeap, capacity);
            assert!(ref_ctrs.0 > 0 && ref_ctrs.1 > 0);
            for shards in [1usize, 2, 3, 5] {
                let (jsonl, chrome, ctrs) = run(SchedulerKind::Sharded { shards }, capacity);
                assert_eq!(ref_jsonl, jsonl, "jsonl diverges at {shards} shards");
                assert_eq!(ref_chrome, chrome, "chrome diverges at {shards} shards");
                assert_eq!(ref_ctrs, ctrs, "counters diverge at {shards} shards");
            }
        }
    }

    #[test]
    fn lookahead_is_min_cross_shard_latency() {
        let mut w = World::with_scheduler(1, SchedulerKind::Sharded { shards: 2 });
        let a = w.add_node(Echo::new("a", SimDuration::ZERO));
        let b = w.add_node(Echo::new("b", SimDuration::ZERO));
        let c = w.add_node(Echo::new("c", SimDuration::ZERO));
        w.connect(a, b, LinkParams::with_latency(SimDuration::from_micros(50)));
        w.connect(a, c, LinkParams::with_latency(SimDuration::from_micros(7)));
        w.set_shard_map(vec![0, 1, 0]);
        // Only a-b crosses the boundary.
        assert_eq!(w.lookahead(), Some(SimDuration::from_micros(50)));
        w.set_shard_map(vec![0, 1, 1]);
        // Both cross: the minimum wins.
        assert_eq!(w.lookahead(), Some(SimDuration::from_micros(7)));
        w.set_shard_map(vec![0, 0, 0]);
        assert_eq!(w.lookahead(), None, "no cross-shard links, no bound");
    }

    #[test]
    fn zero_latency_cross_shard_links_merge_regions() {
        let mut w = World::with_scheduler(1, SchedulerKind::Sharded { shards: 2 });
        let a = w.add_node(Echo::new("a", SimDuration::ZERO));
        let b = w.add_node(Echo::new("b", SimDuration::ZERO));
        w.connect(a, b, LinkParams::with_latency(SimDuration::ZERO));
        w.set_shard_map(vec![0, 1]);
        assert_eq!(w.shard_of(a), w.shard_of(b), "regions merged");
        assert_eq!(w.lookahead(), None);
    }

    #[test]
    fn frames_to_unconnected_port_are_counted() {
        let mut w = World::new(9);
        let a = w.add_node(Echo::new("lonely", SimDuration::ZERO));
        w.schedule(SimTime::from_millis(1), move |w| {
            w.emit(
                Endpoint {
                    node: a,
                    port: PortId(0),
                },
                vec![1, 2, 3].into(),
            );
        });
        w.run_until_idle(10);
        assert_eq!(w.stats().frames_dropped_no_link, 1);
    }
}
