//! Property tests for the flight-recorder ring: whatever the capacity
//! and however the event stream is split across shard scratch rings,
//! the retained window is the *last* `capacity` records of the serial
//! total order — eviction is a pure function of the stream, never of
//! the kernel that recorded it.

use proptest::prelude::*;
use sc_net::SimTime;
use sc_sim::{NodeId, Trace, TracePhase};

/// A synthetic event stream: strictly ordered `(time, cause)` dispatch
/// keys, each dispatch emitting 1..=3 records (exercising `sub`
/// numbering).
fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64, usize)>> {
    proptest::collection::vec((1u64..50, 0u64..8, 1usize..4), 0..120).prop_map(|raw| {
        let mut t = 0u64;
        raw.into_iter()
            .map(|(dt, cause, n)| {
                t += dt;
                (t, cause, n)
            })
            .collect()
    })
}

fn record_serial(stream: &[(u64, u64, usize)], capacity: usize) -> Trace {
    let mut trace = Trace::bounded(capacity);
    for &(t, cause, n) in stream {
        for i in 0..n {
            trace.emit(
                SimTime::from_nanos(t),
                cause,
                NodeId(0),
                TracePhase::Instant,
                "prop",
                "ev",
                cause,
                i as u64,
                String::new,
            );
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bounded rings keep exactly the newest `capacity` records of the
    /// full-capture order, with the recorded/dropped accounting exact.
    #[test]
    fn eviction_keeps_the_newest_suffix_in_total_order(
        stream in arb_stream(),
        capacity in 1usize..64,
    ) {
        let full = record_serial(&stream, usize::MAX);
        let bounded = record_serial(&stream, capacity);

        let all: Vec<_> = full.records().collect();
        let kept: Vec<_> = bounded.records().collect();
        let expect: Vec<_> = all
            .iter()
            .skip(all.len().saturating_sub(capacity))
            .collect();
        prop_assert_eq!(kept.len(), expect.len());
        for (k, e) in kept.iter().zip(expect.iter()) {
            prop_assert_eq!(k.key(), e.key());
        }
        // Total order within the ring: keys strictly increase.
        for w in kept.windows(2) {
            prop_assert!(w[0].key() < w[1].key(), "ring out of order");
        }
        prop_assert_eq!(bounded.recorded(), all.len() as u64);
        prop_assert_eq!(
            bounded.dropped(),
            all.len().saturating_sub(capacity) as u64
        );
    }

    /// Splitting a window's records across shard scratch rings by cause
    /// key and merging with `absorb_batches` reproduces the serial
    /// ring byte for byte — including which records the bound evicted.
    #[test]
    fn shard_split_and_absorb_matches_serial(
        stream in arb_stream(),
        capacity in 1usize..64,
        shards in 1u64..5,
    ) {
        let serial = record_serial(&stream, capacity);

        let mut world = Trace::bounded(capacity);
        let mut scratch: Vec<Trace> =
            (0..shards).map(|_| world.fork_empty()).collect();
        for &(t, cause, n) in &stream {
            let ring = &mut scratch[(cause % shards) as usize];
            for i in 0..n {
                ring.emit(
                    SimTime::from_nanos(t),
                    cause,
                    NodeId(0),
                    TracePhase::Instant,
                    "prop",
                    "ev",
                    cause,
                    i as u64,
                    String::new,
                );
            }
        }
        world.absorb_batches(
            scratch.iter_mut().map(|s| s.drain_batch()).collect(),
        );

        prop_assert_eq!(world.recorded(), serial.recorded());
        prop_assert_eq!(world.to_jsonl(), serial.to_jsonl());
        prop_assert_eq!(world.to_chrome(), serial.to_chrome());
    }
}
