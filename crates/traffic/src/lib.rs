//! FPGA-like traffic generation and convergence measurement.
//!
//! The paper measures convergence *at the data plane*: a Xilinx ML605
//! source streams 64-byte UDP packets to 100 destination IPs (14 kpps
//! per flow, ≈1.4 Mpps, ≈725 Mb/s) while a sink board matches arriving
//! packets against a CAM of expected destinations and tracks the
//! **maximum inter-packet gap** per flow with 70 µs precision. The
//! convergence time of a flow is its maximum gap across the failure.
//!
//! [`TrafficSource`] and [`TrafficSink`] reproduce that methodology on
//! the simulated network; [`TrafficSink::report`] yields per-flow gaps
//! quantized to the configured precision, and the experiment driver
//! resets gap tracking just before injecting the failure (the FPGA
//! equivalent of starting the measurement window).

use sc_net::wire::udp::port as udp_port;
use sc_net::wire::{peek_udp_frame, udp_frame, UdpEndpoints};
use sc_net::{Frame, FxHashMap, Ipv4Addr, MacAddr, SimDuration, SimTime};
use sc_sim::{Ctx, Node, PortId, TimerToken};
use std::any::Any;

const TIMER_TICK: TimerToken = TimerToken(1);

/// UDP source port of every probe frame. Exported so flow-table
/// predictors (the `sc-invariant` walker) can build the exact key the
/// switch will see.
pub const PROBE_SRC_PORT: u16 = 49152;

/// Traffic source configuration.
#[derive(Clone, Debug)]
pub struct SourceConfig {
    pub name: String,
    pub mac: MacAddr,
    pub ip: Ipv4Addr,
    /// L2 gateway (the supercharged router's MAC) — the FPGA is
    /// statically configured with it.
    pub gateway_mac: MacAddr,
    /// One flow per destination IP (the paper uses 100).
    pub flows: Vec<Ipv4Addr>,
    /// Packets per second *per flow* (the paper's boards do 14 000).
    pub rate_pps: u64,
    /// Transmission window.
    pub start: SimTime,
    pub stop: SimTime,
    /// UDP payload size; 22 bytes yields the paper's 64-byte frames
    /// (14 Ethernet + 20 IPv4 + 8 UDP + 22).
    pub payload_len: usize,
}

impl SourceConfig {
    /// Paper settings for the given flows and window.
    pub fn paper(
        name: &str,
        mac: MacAddr,
        ip: Ipv4Addr,
        gateway_mac: MacAddr,
        flows: Vec<Ipv4Addr>,
        start: SimTime,
        stop: SimTime,
    ) -> SourceConfig {
        SourceConfig {
            name: name.to_string(),
            mac,
            ip,
            gateway_mac,
            flows,
            rate_pps: 14_000,
            start,
            stop,
            payload_len: 22,
        }
    }

    /// The inter-packet gap per flow.
    pub fn nominal_gap(&self) -> SimDuration {
        SimDuration::from_nanos(1_000_000_000 / self.rate_pps.max(1))
    }

    /// Aggregate offered load in packets/second.
    pub fn aggregate_pps(&self) -> u64 {
        self.rate_pps * self.flows.len() as u64
    }

    /// Aggregate offered load in bits/second (64-byte frames).
    pub fn aggregate_bps(&self) -> u64 {
        let frame_len = (sc_net::wire::ethernet::HEADER_LEN
            + sc_net::wire::ipv4::HEADER_LEN
            + sc_net::wire::udp::HEADER_LEN
            + self.payload_len) as u64;
        self.aggregate_pps() * frame_len * 8
    }
}

/// The traffic source node: every tick it emits one packet per flow
/// (the FPGA's round-robin schedule), with a per-flow sequence number in
/// the first two payload bytes.
///
/// Frames are **prebuilt once per flow** at construction — headers,
/// IPv4 checksum and all — exactly the way the FPGA's packet engine
/// holds one template per flow in block RAM. Each tick only re-stamps
/// the 2 sequence bytes (copy-on-write if the previous tick's copy is
/// still in flight) and clones a refcount, so the per-packet cost is
/// allocation-free in steady state.
pub struct TrafficSource {
    cfg: SourceConfig,
    seq: u16,
    pub packets_sent: u64,
    port: PortId,
    /// One immutable probe frame per flow (same order as `cfg.flows`).
    templates: Vec<Frame>,
    /// Byte offset of the sequence stamp (start of the UDP payload).
    seq_off: usize,
}

impl TrafficSource {
    pub fn new(cfg: SourceConfig, port: PortId) -> TrafficSource {
        // Template payload: 0x5c filler. The UDP checksum is zeroed once
        // (RFC 768: all-zero means "no checksum") because the per-tick
        // sequence stamp would invalidate a computed one; routers only
        // validate the IPv4 header checksum, which the stamp never
        // touches.
        let payload = vec![0x5c; cfg.payload_len];
        let udp_off = sc_net::wire::ethernet::HEADER_LEN + sc_net::wire::ipv4::HEADER_LEN;
        let templates: Vec<Frame> = cfg
            .flows
            .iter()
            .map(|dst| {
                let mut frame = udp_frame(
                    UdpEndpoints {
                        src_mac: cfg.mac,
                        dst_mac: cfg.gateway_mac,
                        src_ip: cfg.ip,
                        dst_ip: *dst,
                        src_port: PROBE_SRC_PORT,
                        dst_port: udp_port::PROBE,
                    },
                    64,
                    &payload,
                );
                frame[udp_off + 6] = 0;
                frame[udp_off + 7] = 0;
                Frame::new(frame)
            })
            .collect();
        TrafficSource {
            seq_off: udp_off + sc_net::wire::udp::HEADER_LEN,
            cfg,
            seq: 0,
            packets_sent: 0,
            port,
            templates,
        }
    }

    pub fn config(&self) -> &SourceConfig {
        &self.cfg
    }

    /// Re-window the source (experiment drivers decide start/stop only
    /// after the control plane converged, then kick the source with
    /// `World::wake_node(start, id, TimerToken(1))`).
    pub fn set_window(&mut self, start: SimTime, stop: SimTime) {
        self.cfg.start = start;
        self.cfg.stop = stop;
    }
}

impl Node for TrafficSource {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        if !self.cfg.flows.is_empty() && self.cfg.stop > self.cfg.start {
            ctx.set_timer_at(self.cfg.start, TIMER_TICK);
        }
    }

    fn on_frame(&mut self, _ctx: &mut Ctx, _port: PortId, _frame: Frame) {
        // The source never receives (one-way measurement traffic).
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
        if token != TIMER_TICK {
            return;
        }
        let now = ctx.now();
        if now >= self.cfg.stop {
            return;
        }
        self.seq = self.seq.wrapping_add(1);
        let stamp = self.cfg.payload_len >= 2;
        for template in &mut self.templates {
            // Re-stamp the sequence into the first two payload bytes.
            // `make_mut` patches in place when the previous copy has
            // already been consumed, and copies the 64-byte buffer when
            // one is still in flight — never both allocating headers and
            // recomputing checksums like the old per-packet build did.
            if stamp {
                let buf = template.make_mut();
                buf[self.seq_off] = (self.seq >> 8) as u8;
                buf[self.seq_off + 1] = self.seq as u8;
            }
            ctx.send_frame(self.port, template.clone());
            self.packets_sent += 1;
        }
        let next = now + self.cfg.nominal_gap();
        if next < self.cfg.stop {
            ctx.set_timer_at(next, TIMER_TICK);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Per-flow measurement state.
#[derive(Clone, Copy, Debug, Default)]
struct FlowState {
    packets: u64,
    first_arrival: Option<SimTime>,
    last_arrival: Option<SimTime>,
    max_gap: SimDuration,
    /// When the maximum gap ended (i.e. recovery instant).
    max_gap_end: Option<SimTime>,
}

/// One row of the sink's report.
#[derive(Clone, Copy, Debug)]
pub struct FlowReport {
    pub dst: Ipv4Addr,
    pub packets: u64,
    /// Maximum inter-packet gap since the last reset, quantized up to
    /// the measurement precision.
    pub max_gap: SimDuration,
    /// When that gap ended.
    pub recovered_at: Option<SimTime>,
    pub last_arrival: Option<SimTime>,
}

/// Sink configuration.
#[derive(Clone, Debug)]
pub struct SinkConfig {
    pub name: String,
    /// The CAM of expected destination IPs.
    pub expected: Vec<Ipv4Addr>,
    /// Measurement quantization (the paper's FPGA: 70 µs).
    pub precision: SimDuration,
}

impl SinkConfig {
    pub fn paper(name: &str, expected: Vec<Ipv4Addr>) -> SinkConfig {
        SinkConfig {
            name: name.to_string(),
            expected,
            precision: SimDuration::from_micros(70),
        }
    }
}

/// The measurement sink node. Attach any number of ports; all feed the
/// same CAM (the paper wires both providers into one sink board).
pub struct TrafficSink {
    cfg: SinkConfig,
    /// The expected-destination CAM. The FPGA's CAM is an exact matcher
    /// over host addresses, so a hash map *is* the faithful model — and
    /// a per-packet O(1) hit instead of a 32-level trie walk.
    cam: FxHashMap<Ipv4Addr, usize>,
    flows: Vec<FlowState>,
    pub unexpected_packets: u64,
    /// Gap tracking is measured relative to this instant (reset before
    /// injecting a failure).
    window_start: SimTime,
}

impl TrafficSink {
    pub fn new(cfg: SinkConfig) -> TrafficSink {
        let mut cam = FxHashMap::default();
        cam.reserve(cfg.expected.len());
        for (i, ip) in cfg.expected.iter().enumerate() {
            cam.insert(*ip, i);
        }
        let flows = vec![FlowState::default(); cfg.expected.len()];
        TrafficSink {
            cfg,
            cam,
            flows,
            unexpected_packets: 0,
            window_start: SimTime::ZERO,
        }
    }

    /// Begin a fresh measurement window at `now`: clears max-gap state
    /// but keeps packet counters. A flow that has already seen traffic
    /// measures its next gap from its last pre-window arrival; a flow
    /// that never delivered measures from the window start.
    pub fn reset_window(&mut self, now: SimTime) {
        self.window_start = now;
        for f in &mut self.flows {
            f.max_gap = SimDuration::ZERO;
            f.max_gap_end = None;
        }
    }

    /// Per-flow reports (order matches `cfg.expected`).
    pub fn report(&self) -> Vec<FlowReport> {
        self.cfg
            .expected
            .iter()
            .zip(&self.flows)
            .map(|(dst, f)| FlowReport {
                dst: *dst,
                packets: f.packets,
                max_gap: f.max_gap.quantize_up(self.cfg.precision),
                recovered_at: f.max_gap_end,
                last_arrival: f.last_arrival,
            })
            .collect()
    }

    /// Flows that have received at least one packet.
    pub fn active_flows(&self) -> usize {
        self.flows.iter().filter(|f| f.packets > 0).count()
    }

    /// Account for the experiment ending at `now`: a flow that never
    /// recovered after the window start has an open gap running to the
    /// end; fold it into max_gap so blackholed flows are not reported as
    /// converged.
    pub fn close_window(&mut self, now: SimTime) {
        for f in &mut self.flows {
            let reference = f
                .last_arrival
                .unwrap_or(self.window_start)
                .max(self.window_start);
            let open_gap = now.saturating_duration_since(reference);
            if open_gap > f.max_gap {
                f.max_gap = open_gap;
                f.max_gap_end = None; // never recovered
            }
        }
    }
}

impl Node for TrafficSink {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn on_frame(&mut self, ctx: &mut Ctx, _port: PortId, frame: Frame) {
        // Borrowed header parse: same validation as `open_udp_frame`,
        // no payload copy (the sink only matches on addressing).
        let Ok(Some((_eth, ip, udp, _payload))) = peek_udp_frame(&frame) else {
            return;
        };
        if udp.dst_port != udp_port::PROBE {
            return;
        }
        let Some(&idx) = self.cam.get(&ip.dst) else {
            self.unexpected_packets += 1;
            return;
        };
        let now = ctx.now();
        let f = &mut self.flows[idx];
        f.packets += 1;
        if f.first_arrival.is_none() {
            f.first_arrival = Some(now);
        }
        // Gap since the last arrival (or since the window start for
        // flows that had not delivered since the reset).
        let reference = match f.last_arrival {
            Some(t) if t >= self.window_start => Some(t),
            Some(t) => Some(t.max(self.window_start)),
            None => Some(self.window_start),
        };
        if let Some(r) = reference {
            let gap = now.saturating_duration_since(r);
            if gap > f.max_gap {
                f.max_gap = gap;
                f.max_gap_end = Some(now);
            }
        }
        f.last_arrival = Some(now);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sim::{LinkParams, World};

    const SRC_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);
    const GW_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);

    fn flows(n: u8) -> Vec<Ipv4Addr> {
        (0..n).map(|i| Ipv4Addr::new(1, 0, i, 1)).collect()
    }

    #[test]
    fn paper_load_numbers() {
        let cfg = SourceConfig::paper(
            "fpga",
            SRC_MAC,
            Ipv4Addr::new(10, 0, 0, 100),
            GW_MAC,
            flows(100),
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
        assert_eq!(cfg.aggregate_pps(), 1_400_000, "≈1.4 Mpps (§4)");
        let mbps = cfg.aggregate_bps() as f64 / 1e6;
        assert!((700.0..750.0).contains(&mbps), "≈725 Mb/s, got {mbps}");
        assert_eq!(cfg.nominal_gap().as_micros(), 71, "≈71 µs per flow");
    }

    /// Source wired straight to sink: every packet arrives; gaps equal
    /// the nominal inter-packet gap.
    #[test]
    fn direct_stream_measures_nominal_gap() {
        let mut w = World::new(1);
        let fl = flows(4);
        let src_cfg = SourceConfig {
            rate_pps: 1_000, // 1ms apart, keeps the test light
            ..SourceConfig::paper(
                "src",
                SRC_MAC,
                Ipv4Addr::new(10, 0, 0, 100),
                GW_MAC,
                fl.clone(),
                SimTime::ZERO,
                SimTime::from_millis(500),
            )
        };
        let sink = w.add_node(TrafficSink::new(SinkConfig::paper("sink", fl.clone())));
        let src_node = TrafficSource::new(src_cfg, PortId(0));
        let src = w.add_node(src_node);
        w.connect(src, sink, LinkParams::default());
        w.run_until_idle(2_000_000);

        let sink_node = w.node::<TrafficSink>(sink);
        assert_eq!(sink_node.active_flows(), 4);
        assert_eq!(sink_node.unexpected_packets, 0);
        for r in sink_node.report() {
            assert_eq!(r.packets, 500);
            // 1ms gap quantized up to 70µs boundary: 1.05ms.
            assert_eq!(r.max_gap.as_micros(), 1050);
        }
        assert_eq!(w.node::<TrafficSource>(src).packets_sent, 2_000);
    }

    /// A mid-stream outage shows up as the max gap of exactly the outage
    /// length (plus one nominal gap), quantized to the precision.
    #[test]
    fn outage_is_measured_with_fpga_precision() {
        let mut w = World::new(2);
        let fl = flows(2);
        let src_cfg = SourceConfig {
            rate_pps: 1_000,
            ..SourceConfig::paper(
                "src",
                SRC_MAC,
                Ipv4Addr::new(10, 0, 0, 100),
                GW_MAC,
                fl.clone(),
                SimTime::ZERO,
                SimTime::from_secs(2),
            )
        };
        let sink = w.add_node(TrafficSink::new(SinkConfig::paper("sink", fl.clone())));
        let src = {
            let n = TrafficSource::new(src_cfg, PortId(0));
            w.add_node(n)
        };
        let (link, _, _) = w.connect(src, sink, LinkParams::default());
        // Reset the window just before a 150ms outage at t=1s.
        let sink_id = sink;
        w.schedule(SimTime::from_millis(999), move |w| {
            let now = w.now();
            w.node_mut::<TrafficSink>(sink_id).reset_window(now);
        });
        w.schedule(SimTime::from_secs(1), move |w| w.set_link_up(link, false));
        w.schedule(
            SimTime::from_secs(1) + SimDuration::from_millis(150),
            move |w| w.set_link_up(link, true),
        );
        w.run_until_idle(5_000_000);
        let sink_node = w.node::<TrafficSink>(sink);
        for r in sink_node.report() {
            // True gap ≈ 150ms + ≤1ms scheduling: quantized to a 70µs
            // multiple in [150, 152] ms.
            assert!(
                r.max_gap >= SimDuration::from_millis(150)
                    && r.max_gap <= SimDuration::from_millis(152),
                "gap {}",
                r.max_gap
            );
            assert_eq!(r.max_gap.as_nanos() % 70_000, 0, "quantized to 70µs");
            assert!(r.recovered_at.is_some());
        }
    }

    /// A flow that never recovers must report an open-ended gap, not
    /// look converged.
    #[test]
    fn blackholed_flow_reports_open_gap() {
        let mut w = World::new(3);
        let fl = flows(1);
        let src_cfg = SourceConfig {
            rate_pps: 1_000,
            ..SourceConfig::paper(
                "src",
                SRC_MAC,
                Ipv4Addr::new(10, 0, 0, 100),
                GW_MAC,
                fl.clone(),
                SimTime::ZERO,
                SimTime::from_secs(3),
            )
        };
        let sink = w.add_node(TrafficSink::new(SinkConfig::paper("sink", fl.clone())));
        let src = w.add_node(TrafficSource::new(src_cfg, PortId(0)));
        let (link, _, _) = w.connect(src, sink, LinkParams::default());
        let sink_id = sink;
        w.schedule(SimTime::from_secs(1), move |w| {
            let now = w.now();
            w.node_mut::<TrafficSink>(sink_id).reset_window(now);
            w.set_link_up(link, false);
        });
        w.run_until_idle(5_000_000);
        let end = w.now();
        w.node_mut::<TrafficSink>(sink).close_window(end);
        let r = &w.node::<TrafficSink>(sink).report()[0];
        assert!(
            r.max_gap >= SimDuration::from_secs(1),
            "open gap counted: {}",
            r.max_gap
        );
        assert!(r.recovered_at.is_none(), "never recovered");
    }

    #[test]
    fn unexpected_destinations_counted_not_tracked() {
        let mut w = World::new(4);
        let expected = vec![Ipv4Addr::new(1, 0, 0, 1)];
        let actual = vec![Ipv4Addr::new(9, 9, 9, 9)];
        let src_cfg = SourceConfig {
            rate_pps: 100,
            ..SourceConfig::paper(
                "src",
                SRC_MAC,
                Ipv4Addr::new(10, 0, 0, 100),
                GW_MAC,
                actual,
                SimTime::ZERO,
                SimTime::from_millis(100),
            )
        };
        let sink = w.add_node(TrafficSink::new(SinkConfig::paper("sink", expected)));
        let src = w.add_node(TrafficSource::new(src_cfg, PortId(0)));
        w.connect(src, sink, LinkParams::default());
        w.run_until_idle(1_000_000);
        let s = w.node::<TrafficSink>(sink);
        assert_eq!(s.active_flows(), 0);
        assert!(s.unexpected_packets > 0);
    }
}
