//! Calibration sweep over a replayed MRT trace: where does
//! supercharging stop paying?
//!
//! ```text
//! cargo run --release --example calibration_sweep
//! ```
//!
//! Runs the *same* recorded update trace (the committed RIS-style
//! fixtures, warped 4× faster) followed by a primary-cable cut,
//! through legacy and supercharged mode across a family of
//! `Calibration` models — the paper's Nexus 7k FIB walk, hypothetical
//! faster/slower line cards, and the idealized instant router. The
//! recorded churn loads realistic table dynamics first; the cut right
//! after the trace drains is the convergence event whose cost scales
//! with the FIB walk (a cut placed *inside* the trace would be carved
//! across the per-burst measurement windows — each window clips gaps
//! at its close, hiding the full outage). The paper measures one
//! hardware point; this maps the neighbourhood (ROADMAP:
//! "scenario-driven calibration sweep") — as the modeled router gets
//! faster, the supercharged speedup collapses toward 1×.

use supercharged_router::net::SimDuration;
use supercharged_router::router::Calibration;
use supercharged_router::scenarios::{
    run_scenario, EventScript, FeedSource, Mode, MrtReplayFeed, ScenarioConfig, TopologySpec,
};

fn fixture(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// A calibration scaled from the paper's Nexus 7k by `pct` percent
/// (FIB entry cost and peer-down processing both scale; 100 = paper).
fn scaled_cal(pct: u64) -> Calibration {
    let base = Calibration::nexus7k();
    Calibration {
        fib_entry_update: base.fib_entry_update * pct / 100,
        peer_down_processing: base.peer_down_processing * pct / 100,
        ..base
    }
}

fn main() {
    let mut feed = MrtReplayFeed::new(fixture("ris_rib.mrt"), fixture("ris_updates.mrt"));
    feed.time_scale = "0.25".parse().unwrap();
    feed.epoch_quiet = SimDuration::from_millis(40);
    let topo = TopologySpec::Chain {
        providers: 2,
        hops: 1,
    };
    // Cut the primary's cable just after the warped trace drains
    // (~2.0 s), so the cut's convergence is measured in one full-length
    // window instead of being carved across replay-burst windows.
    let script = EventScript::new(
        "post-replay-cut",
        vec![supercharged_router::scenarios::ScenarioEvent::LinkDown {
            link: supercharged_router::scenarios::LinkRef::ProviderSwitch(
                supercharged_router::scenarios::ProviderSel::Primary,
            ),
            at: SimDuration::from_millis(2_500),
        }],
    );

    let cals: [(&str, Calibration); 5] = [
        ("instant", Calibration::instant()),
        ("4x-faster", scaled_cal(25)),
        ("2x-faster", scaled_cal(50)),
        ("nexus7k", scaled_cal(100)),
        ("2x-slower", scaled_cal(200)),
    ];

    println!(
        "calibration sweep: one recorded trace + post-trace cut, {} models x 2 modes\n",
        cals.len()
    );
    println!(
        "{:>10}  {:>12}  {:>12}  {:>12}  {:>12}  {:>8}  {:>8}",
        "model", "legacy p50", "sc p50", "legacy p95", "sc p95", "x(p50)", "x(p95)"
    );
    for (name, cal) in cals {
        let cfg = ScenarioConfig {
            flows: 6,
            rate_pps: Some(2_000),
            cal,
            feed: FeedSource::MrtReplay(feed.clone()),
            ..ScenarioConfig::default()
        };
        let legacy = run_scenario(&topo, &script, Mode::Stock, &cfg);
        let sup = run_scenario(&topo, &script, Mode::Supercharged, &cfg);
        let (ls, ss) = (legacy.stats(), sup.stats());
        let x = |l: SimDuration, s: SimDuration| l.as_nanos() as f64 / s.as_nanos().max(1) as f64;
        println!(
            "{:>10}  {:>12}  {:>12}  {:>12}  {:>12}  {:>7.2}x  {:>7.2}x",
            name,
            ls.median.to_string(),
            ss.median.to_string(),
            ls.p95.to_string(),
            ss.p95.to_string(),
            x(ls.median, ss.median),
            x(ls.p95, ss.p95),
        );
    }
    println!(
        "\n(every cell replays the same 24-burst fixture trace, then cuts the \
         primary's cable; tail flows wait out the whole FIB walk, so the \
         speedup collapses toward 1x as the modeled router approaches instant)"
    );
}
