//! The §4 controller micro-benchmark at example scale: push a 2×50k
//! feed through the supercharger engine and print the latency
//! distribution (the full-scale version is `sc-bench --bin microbench`).
//!
//! ```text
//! cargo run --release --example controller_microbench
//! ```

use std::net::Ipv4Addr;
use std::time::Instant;
use supercharged_router::net::MacAddr;
use supercharged_router::routegen::{generate_feed_for, prefix_universe, FeedConfig};
use supercharged_router::supercharger::engine::PeerSpec;
use supercharged_router::supercharger::{Engine, EngineConfig};

const R2: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const R3: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

fn main() {
    let prefixes = 50_000u32;
    let universe = prefix_universe(prefixes, 42);
    let feeds = [
        (
            R2,
            generate_feed_for(&FeedConfig::new(prefixes, 42, R2, 65002), &universe),
        ),
        (
            R3,
            generate_feed_for(&FeedConfig::new(prefixes, 42, R3, 65003), &universe),
        ),
    ];
    let mut engine = Engine::new(EngineConfig::new(
        "10.0.200.0/24".parse().unwrap(),
        vec![
            PeerSpec {
                id: R2,
                mac: MacAddr([2, 0, 0, 0, 0, 2]),
                switch_port: 2,
                local_pref: 200,
                router_id: R2,
            },
            PeerSpec {
                id: R3,
                mac: MacAddr([2, 0, 0, 0, 0, 3]),
                switch_port: 3,
                local_pref: 100,
                router_id: R3,
            },
        ],
    ));

    let mut lat: Vec<u128> = Vec::new();
    let start = Instant::now();
    for (peer, feed) in &feeds {
        for upd in feed {
            let t = Instant::now();
            std::hint::black_box(engine.process_update(*peer, upd));
            lat.push(t.elapsed().as_nanos());
        }
    }
    let total = start.elapsed();
    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p / 100.0) as usize] as f64 / 1e3;

    println!(
        "processed {} UPDATE messages carrying 2x{prefixes} routes in {:.2}s",
        lat.len(),
        total.as_secs_f64()
    );
    println!(
        "per-message latency: p50 {:.1}us  p99 {:.1}us  max {:.1}us",
        pct(50.0),
        pct(99.0),
        pct(99.999)
    );
    println!("paper (unoptimized Python, 2x500k): p99 125ms, worst 0.8s");
    println!(
        "backup-groups created: {} (two peers -> one live group)",
        engine.stats.groups_created
    );
    println!(
        "announcements to the router: {} ({} with virtual next-hops)",
        engine.stats.announcements,
        engine.groups().iter().map(|g| g.prefixes).sum::<u64>()
    );
}
