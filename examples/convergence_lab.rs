//! The full Fig. 4 lab, phase by phase, at a configurable scale — the
//! closest thing to sitting in front of the paper's testbed.
//!
//! ```text
//! cargo run --release --example convergence_lab -- [prefixes] [stock|supercharged]
//! ```

use supercharged_router::lab::{
    expected_convergence, run_convergence_trial, suggested_flow_rate, LabConfig, Mode,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let prefixes: u32 = args.first().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let mode = match args.get(1).map(String::as_str) {
        Some("stock") => Mode::Stock,
        _ => Mode::Supercharged,
    };
    let cfg = LabConfig {
        mode,
        prefixes,
        flows: 100,
        seed: 42,
        ..LabConfig::default()
    };

    println!("lab: {} mode, {prefixes} prefixes, 100 flows", mode.label());
    println!(
        "  probe rate   : {} pps/flow (paper: 14000)",
        suggested_flow_rate(&cfg)
    );
    println!("  expect ~{} convergence\n", expected_convergence(&cfg));

    let t0 = std::time::Instant::now();
    let r = run_convergence_trial(cfg);
    let stats = r.stats();

    println!("phases:");
    println!("  table loaded & BFD up at virtual t={}", r.setup_time);
    println!("  failure injected at      t={}", r.fail_at);
    if let Some(d) = r.detected_at {
        println!("  BFD detection after      {}", d - r.fail_at);
    }
    if let Some(n) = r.flow_rewrites {
        println!("  flow rules rewritten     {n}");
    }
    println!(
        "\nper-flow convergence ({} flows, 70us measurement quantum):",
        stats.n
    );
    println!("  min    {}", stats.min);
    println!("  p5     {}", stats.p5);
    println!("  median {}", stats.median);
    println!("  p95    {}", stats.p95);
    println!("  max    {}", stats.max);
    println!("  unrecovered flows: {}", r.unrecovered);
    println!(
        "\n(wall clock: {:.1}s of real time for {} of virtual time)",
        t0.elapsed().as_secs_f64(),
        r.fail_at
    );
}
