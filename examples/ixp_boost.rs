//! The paper's §5 outlook: supercharging in an IXP-like setting (SDX).
//! A route server fronts SIX participant routers; prefixes spread across
//! many (primary, backup) pairs; one participant fails and only *its*
//! groups are rewritten. Also demonstrates the depth-3 extension
//! (protection against double failures) the paper sketches in §2.
//!
//! ```text
//! cargo run --release --example ixp_boost
//! ```

use std::net::Ipv4Addr;
use supercharged_router::bgp::attrs::{AsPath, RouteAttrs};
use supercharged_router::bgp::msg::UpdateMsg;
use supercharged_router::net::{Ipv4Prefix, MacAddr};
use supercharged_router::supercharger::engine::PeerSpec;
use supercharged_router::supercharger::{Engine, EngineConfig};

fn participant(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 9, 0, i as u8 + 1)
}

fn build(n: usize, depth: usize) -> Engine {
    let peers = (0..n)
        .map(|i| PeerSpec {
            id: participant(i),
            mac: MacAddr([2, 9, 0, 0, 0, i as u8 + 1]),
            switch_port: i as u16 + 1,
            local_pref: 100,
            router_id: participant(i),
        })
        .collect();
    Engine::new(EngineConfig {
        protect_depth: depth,
        ..EngineConfig::new("10.9.200.0/24".parse().unwrap(), peers)
    })
}

/// Every participant announces every prefix; AS-path lengths rotate so
/// prefix k prefers participant (k mod n), with (k+1 mod n) as backup.
fn announce_all(e: &mut Engine, n: usize, prefixes: u32) {
    for k in 0..prefixes {
        let pfx = Ipv4Prefix::new(Ipv4Addr::from(0x0b00_0000 + (k << 8)), 24);
        for i in 0..n {
            // Rank: distance from the preferred participant for prefix k.
            let rank = (i + n - (k as usize % n)) % n;
            let path: Vec<u16> = (0..=rank as u16).map(|h| 64000 + h).collect();
            let attrs = RouteAttrs::ebgp(AsPath::sequence(path), participant(i)).shared();
            e.process_update(participant(i), &UpdateMsg::announce(attrs, vec![pfx]));
        }
    }
}

fn main() {
    let n = 6;
    let prefixes = 600u32;

    println!("--- depth-2 protection (the paper's configuration) ---");
    let mut e = build(n, 2);
    announce_all(&mut e, n, prefixes);
    println!(
        "{} participants x {} prefixes -> {} backup-groups (max possible: n(n-1) = {})",
        n,
        prefixes,
        e.groups().len(),
        n * (n - 1)
    );
    let victim = participant(2);
    let plan = e.failover_plan(victim);
    println!(
        "participant {victim} fails: {} of {} groups rewritten ({} prefixes protected instantly)",
        plan.rewrites.len(),
        e.groups().len(),
        e.groups()
            .iter()
            .filter(|g| plan.rewrites.iter().any(|r| r.group == g.id))
            .map(|g| g.prefixes)
            .sum::<u64>()
    );
    let repair = e.peer_down_repair(victim);
    println!(
        "control-plane repair: {} actions toward the route server, at its own pace\n",
        repair.len()
    );

    println!("--- depth-3 extension (double-failure protection) ---");
    let mut e3 = build(n, 3);
    announce_all(&mut e3, n, prefixes);
    println!("{} groups of size 3", e3.groups().len());
    let p1 = e3.failover_plan(participant(0));
    let p2 = e3.failover_plan(participant(1)); // second failure, no repair between
    println!(
        "participant 1 fails: {} rewrites; participant 2 fails right after: {} rewrites, {} unprotected",
        p1.rewrites.len(),
        p2.rewrites.len(),
        p2.unprotected_groups
    );
    println!("depth-3 groups survive two failures without any control-plane help.");
}
