//! The paper's motivating scenario (Figs. 1 and 2), inspected live: a
//! dual-homed edge router whose *flat* FIB holds one L2 next-hop per
//! prefix, versus its supercharged twin whose FIB points every prefix at
//! one virtual next-hop resolved — via ARP — to a virtual MAC that the
//! SDN switch rewrites.
//!
//! The example prints the actual FIB rows, the ARP binding, and the
//! switch flow table before and after the failure, mirroring the
//! paper's figures.
//!
//! ```text
//! cargo run --release --example multihoming
//! ```

use supercharged_router::lab::topology::{self, ConvergenceLab, IP_R2, IP_R3};
use supercharged_router::lab::{LabConfig, Mode};
use supercharged_router::net::SimDuration;
use supercharged_router::openflow::OfSwitch;
use supercharged_router::router::LegacyRouter;
use supercharged_router::supercharger::Controller;

fn dump_fib(lab: &ConvergenceLab, title: &str, rows: usize) {
    let r1 = lab.world.node::<LegacyRouter>(lab.r1);
    println!("{title} (first {rows} of {} entries)", r1.fib().len());
    println!("  {:<20} {:>16}", "prefix", "IP next-hop");
    for (prefix, entry) in r1.fib().iter().take(rows) {
        let label = if entry.next_hop == IP_R2 {
            " (R2, provider $)"
        } else if entry.next_hop == IP_R3 {
            " (R3, provider $$)"
        } else if lab.universe.binary_search(&prefix).is_err() {
            " (connected)"
        } else {
            " (virtual next-hop!)"
        };
        println!(
            "  {:<20} {:>16}{label}",
            prefix.to_string(),
            entry.next_hop.to_string()
        );
    }
    println!();
}

fn dump_flows(lab: &ConvergenceLab, title: &str) {
    let sw = lab.world.node::<OfSwitch>(lab.switch);
    println!("{title} ({} entries)", sw.table().len());
    for e in sw.table().entries() {
        println!("  {e}");
    }
    println!();
}

fn run(mode: Mode) -> ConvergenceLab {
    let mut lab = ConvergenceLab::build(LabConfig {
        mode,
        prefixes: 8, // small enough to print whole tables
        flows: 4,
        seed: 3,
        ..LabConfig::default()
    });
    lab.run_until_converged();
    lab
}

fn main() {
    // ---- Fig. 1: the classical router ----
    println!("================ Fig. 1 — classical (flat FIB) ================\n");
    let stock = run(Mode::Stock);
    dump_fib(&stock, "R1 FIB — every entry holds its own next-hop", 9);
    println!(
        "Upon failure of R2, every one of those entries must be rewritten,\n\
         one by one (~281us each on the modeled Nexus 7k: ~2.4 minutes at 512k).\n"
    );

    // ---- Fig. 2: the supercharged router ----
    println!("============== Fig. 2 — supercharged (2-stage FIB) =============\n");
    let mut lab = run(Mode::Supercharged);
    dump_fib(
        &lab,
        "R1 FIB — every prefix points at ONE virtual next-hop",
        9,
    );

    let ctrl = lab.world.node::<Controller>(lab.controllers[0]);
    for group in ctrl.engine().groups().iter() {
        println!(
            "backup-group {:?}: ({}, {}) -> VNH {}  VMAC {}  [{} prefixes]",
            group.id, group.key[0], group.key[1], group.vnh, group.vmac, group.prefixes
        );
    }
    println!();
    dump_flows(&lab, "switch flow table — the second FIB stage");

    // ---- the failure ----
    println!("=============== pulling R2's cable ================\n");
    let link = lab.r2_link;
    let fail_at = lab.world.now() + SimDuration::from_millis(100);
    lab.world
        .schedule(fail_at, move |w| w.set_link_up(link, false));
    lab.world.run_until(fail_at + SimDuration::from_millis(500));

    let ctrl = lab.world.node::<Controller>(lab.controllers[0]);
    for (t, ev) in ctrl.events.iter().filter(|(t, _)| *t >= fail_at) {
        println!("  [{}] {ev:?}", *t - fail_at);
    }
    println!();
    dump_flows(
        &lab,
        "switch flow table after failover — one rule rewritten",
    );
    println!(
        "The FIB above is *unchanged* — all {} prefixes still point at the VNH.\n\
         Only the switch rule moved. That is the paper's whole trick.",
        lab.cfg.prefixes
    );
    let _ = topology::MAC_R1; // (referenced for doc purposes)
}
