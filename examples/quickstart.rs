//! Quickstart: supercharge a router, kill its preferred provider, watch
//! it converge ~100 ms instead of ~0.7 s.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use supercharged_router::lab::{run_convergence_trial, LabConfig, Mode};

fn main() {
    // The paper's scenario at 1k prefixes: R1 prefers provider R2 ($)
    // over R3 ($$); both advertise the same 1 000 prefixes; BFD watches
    // R2; at t=fail the R2 cable is pulled.
    let cfg = LabConfig {
        mode: Mode::Supercharged,
        prefixes: 1_000,
        flows: 50,
        seed: 1,
        ..LabConfig::default()
    };
    println!("building the supercharged lab (1k prefixes, 50 monitored flows)...");
    let supercharged = run_convergence_trial(cfg.clone());

    println!("building the stock lab for comparison...");
    let stock = run_convergence_trial(LabConfig {
        mode: Mode::Stock,
        ..cfg
    });

    let s = supercharged.stats();
    println!("\nsupercharged router:");
    println!(
        "  detection      : {}",
        supercharged.detected_at.unwrap() - supercharged.fail_at
    );
    println!(
        "  flow rewrites  : {} (constant, regardless of 1k prefixes)",
        supercharged.flow_rewrites.unwrap()
    );
    println!("  convergence    : median {}   worst {}", s.median, s.max);

    let t = stock.stats();
    println!("\nstock router (same failure):");
    println!("  convergence    : median {}   worst {}", t.median, t.max);

    println!(
        "\nspeedup: {:.0}x — and it grows with the table size (run the fig5 bench \
         for the full 1k..500k sweep, where it reaches ~900x).",
        t.max.as_secs_f64() / s.max.as_secs_f64()
    );
}
