//! `routegen mrt` — write the committed MRT fixtures.
//!
//! ```text
//! cargo run --example routegen_mrt [-- --out-dir tests/fixtures]
//! ```
//!
//! Regenerates `tests/fixtures/ris_rib.mrt` (a `TABLE_DUMP_V2` RIB
//! snapshot) and `tests/fixtures/ris_updates.mrt` (a bursty `BGP4MP_ET`
//! update trace) from `MrtExportConfig::fixture()`. Both are pure
//! functions of the config, so rerunning this produces byte-identical
//! files — the `mrt_fixtures_are_byte_reproducible` test pins the
//! committed bytes to the generator.

use supercharged_router::mrt::{ReplaySchedule, RibSnapshot, TimeScale};
use supercharged_router::routegen::mrt::{rib_snapshot_mrt, update_trace_mrt, MrtExportConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR")));
    std::fs::create_dir_all(&out_dir).expect("create fixture dir");

    let cfg = MrtExportConfig::fixture();
    let rib = rib_snapshot_mrt(&cfg);
    let updates = update_trace_mrt(&cfg);

    let rib_path = format!("{out_dir}/ris_rib.mrt");
    let upd_path = format!("{out_dir}/ris_updates.mrt");
    std::fs::write(&rib_path, &rib).expect("write rib fixture");
    std::fs::write(&upd_path, &updates).expect("write updates fixture");

    let snap = RibSnapshot::load(&rib).expect("snapshot loads");
    let sched = ReplaySchedule::compile(&updates, TimeScale::REAL).expect("trace compiles");
    println!(
        "wrote {rib_path}: {} bytes, {} prefixes x {} peers",
        rib.len(),
        snap.routes.len(),
        snap.peers.len()
    );
    println!(
        "wrote {upd_path}: {} bytes, {} updates over {} ({} prefix events)",
        updates.len(),
        sched.events.len(),
        sched.end,
        sched.prefix_events()
    );
}
