//! Run the default scenario matrix — four topologies (the paper's
//! Fig. 4 lab, a provider chain, an IXP hub, a ring) × two failure
//! scripts (cable cut, cable flap) × both modes — and emit CSV + JSON
//! reports next to the human-readable summary.
//!
//! ```text
//! cargo run --release --example scenario_suite -- [prefixes] [out-prefix]
//! ```
//!
//! Writes `<out-prefix>.csv` and `<out-prefix>.json`
//! (default `scenario_report`).

use supercharged_router::scenarios::{run_suite, ScenarioConfig, SuiteConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let prefixes: u32 = args.first().and_then(|a| a.parse().ok()).unwrap_or(500);
    let out_prefix = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "scenario_report".to_string());

    let mut suite = SuiteConfig::default_matrix();
    suite.base = ScenarioConfig {
        prefixes,
        flows: 30,
        ..ScenarioConfig::default()
    };
    let trials = suite.topologies.len() * suite.scripts.len() * suite.modes.len();
    println!(
        "scenario suite: {} topologies x {} scripts x {} modes = {trials} trials, {prefixes} prefixes each",
        suite.topologies.len(),
        suite.scripts.len(),
        suite.modes.len()
    );

    let t0 = std::time::Instant::now();
    let report = run_suite(&suite);
    println!("ran in {:.1}s\n", t0.elapsed().as_secs_f64());

    println!(
        "{:<12} {:<14} {:<13} {:>10} {:>10} {:>10} {:>6}",
        "topology", "script", "mode", "median", "p95", "max", "lost"
    );
    for row in &report.rows {
        let s = row.stats();
        println!(
            "{:<12} {:<14} {:<13} {:>10} {:>10} {:>10} {:>6}",
            row.topology,
            row.script,
            supercharged_router::scenarios::mode_label(row.mode),
            s.median.to_string(),
            s.p95.to_string(),
            s.max.to_string(),
            row.unrecovered
        );
    }

    println!();
    for (topo, script, x) in report.speedups() {
        println!("{topo:<12} {script:<14} supercharging is {x:.0}x faster (median)");
    }

    let csv_path = format!("{out_prefix}.csv");
    let json_path = format!("{out_prefix}.json");
    // Stable variants: identical args ⇒ byte-identical files (the
    // wall-clock events_per_sec perf field lives in `to_csv`/`to_json`
    // and the `sc-bench scenarios` reports).
    std::fs::write(&csv_path, report.to_csv_stable()).expect("write CSV report");
    std::fs::write(&json_path, report.to_json_stable()).expect("write JSON report");
    println!("\nreports: {csv_path}, {json_path}");
}
