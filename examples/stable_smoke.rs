//! Cross-version determinism probe: print the stable JSON of a fixed
//! smoke-shaped suite.
use sc_lab::Mode;
use sc_net::SimDuration;
use sc_scenarios::{run_suite, EventScript, ScenarioConfig, SuiteConfig, TopologySpec};

fn main() {
    let suite = SuiteConfig {
        topologies: vec![TopologySpec::Chain {
            providers: 2,
            hops: 1,
        }],
        scripts: vec![
            EventScript::primary_cut(),
            EventScript::primary_flap(SimDuration::from_secs(3), 2),
        ],
        modes: vec![Mode::Stock, Mode::Supercharged],
        workers: None,
        base: ScenarioConfig {
            prefixes: 300,
            flows: 10,
            seed: 42,
            ..ScenarioConfig::default()
        },
    };
    let report = run_suite(&suite);
    print!("{}", report.to_json_stable());
}
