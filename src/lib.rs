//! # supercharged-router
//!
//! A full reproduction of *"Supercharge me: Boost Router Convergence with
//! SDN"* (Chang, Holterbach, Happe, Vanbever — SIGCOMM 2015,
//! arXiv:1505.06630) as a Rust workspace.
//!
//! This facade crate re-exports every workspace crate under one roof so
//! examples and downstream users can depend on a single package:
//!
//! * [`net`] — base types and wire formats (Ethernet, ARP, IPv4, UDP),
//!   prefix trie, virtual time, reliable channel.
//! * [`sim`] — the deterministic discrete-event simulation kernel.
//! * [`bgp`] — BGP-4: messages, session FSM, RIBs, decision process.
//! * [`bfd`] — RFC 5880 failure detection.
//! * [`openflow`] — the SDN switch substrate.
//! * [`router`] — the legacy router model with calibrated FIB timing.
//! * [`supercharger`] — **the paper's contribution**: backup-group
//!   computation, VNH/VMAC provisioning, ARP responder, and the
//!   data-plane failover procedure.
//! * [`traffic`] — FPGA-like traffic source/sink and gap measurement.
//! * [`mrt`] — RFC 6396 MRT dump reader/writer and timed route replay.
//! * [`routegen`] — synthetic RIPE-RIS-style route feeds and MRT
//!   fixture export.
//! * [`invariant`] — the continuous convergence-invariant engine:
//!   in-window FIB walks classifying blackholes, loops and transit
//!   violations.
//! * [`lab`] — the Fig. 4 evaluation topology and experiment drivers.
//! * [`scenarios`] — the declarative scenario engine: topology
//!   generators, failure scripts, and the suite runner.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```no_run
//! use supercharged_router::lab::{run_convergence_trial, LabConfig, Mode};
//!
//! let cfg = LabConfig { prefixes: 10_000, mode: Mode::Supercharged, ..LabConfig::default() };
//! let report = run_convergence_trial(cfg);
//! println!("median convergence: {}", report.stats().median);
//! ```

pub use sc_bfd as bfd;
pub use sc_bgp as bgp;
pub use sc_invariant as invariant;
pub use sc_lab as lab;
pub use sc_mrt as mrt;
pub use sc_net as net;
pub use sc_openflow as openflow;
pub use sc_routegen as routegen;
pub use sc_router as router;
pub use sc_scenarios as scenarios;
pub use sc_sim as sim;
pub use sc_traffic as traffic;
pub use supercharger;
