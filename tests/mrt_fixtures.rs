//! The committed MRT fixtures are byte-reproducible from the
//! generator: `cargo run --example routegen_mrt` must always rewrite
//! exactly what is in git, and the fixtures must load through the
//! replay pipeline.

use supercharged_router::mrt::{ReplaySchedule, RibSnapshot, TimeScale};
use supercharged_router::routegen::mrt::{rib_snapshot_mrt, update_trace_mrt, MrtExportConfig};
use supercharged_router::routegen::prefix_universe;

fn fixture(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn mrt_fixtures_are_byte_reproducible() {
    let cfg = MrtExportConfig::fixture();
    assert_eq!(
        fixture("ris_rib.mrt"),
        rib_snapshot_mrt(&cfg),
        "committed ris_rib.mrt differs from the generator — \
         rerun `cargo run --example routegen_mrt`"
    );
    assert_eq!(
        fixture("ris_updates.mrt"),
        update_trace_mrt(&cfg),
        "committed ris_updates.mrt differs from the generator — \
         rerun `cargo run --example routegen_mrt`"
    );
}

#[test]
fn rib_fixture_is_a_loadable_snapshot() {
    let cfg = MrtExportConfig::fixture();
    let snap = RibSnapshot::load(&fixture("ris_rib.mrt")).unwrap();
    assert_eq!(snap.peers.len(), cfg.peers as usize);
    assert_eq!(snap.prefixes(), prefix_universe(cfg.prefixes, cfg.seed));
    for pi in 0..cfg.peers {
        assert_eq!(
            snap.routes_for_peer(pi).len(),
            cfg.prefixes as usize,
            "peer {pi} covers the full table"
        );
    }
}

#[test]
fn updates_fixture_is_a_bursty_trace() {
    let cfg = MrtExportConfig::fixture();
    let sched = ReplaySchedule::compile(&fixture("ris_updates.mrt"), TimeScale::REAL).unwrap();
    assert_eq!(
        sched.prefix_events(),
        2 * cfg.bursts as usize * cfg.burst_prefixes as usize,
        "every burst withdraws then re-announces its slice"
    );
    let epochs = sched.epochs(sc_net::SimDuration::from_millis(100));
    assert_eq!(epochs.len(), cfg.bursts as usize, "one epoch per burst");
}
