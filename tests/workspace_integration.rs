//! Workspace-spanning integration tests on the facade crate: the
//! controller must rank routes *exactly* like the router it fronts, the
//! whole lab must be deterministic from its seed, and the facade API
//! must support the quickstart flow end to end.

use supercharged_router::bgp::{compare_routes, LocRib, PeerInfo, Route};
use supercharged_router::lab::topology::{IP_R2, IP_R3, MAC_R2, MAC_R3};
use supercharged_router::lab::{run_convergence_trial, LabConfig, Mode};
use supercharged_router::net::{MacAddr, SimDuration};
use supercharged_router::routegen::{generate_feed_for, prefix_universe, FeedConfig};
use supercharged_router::supercharger::engine::PeerSpec;
use supercharged_router::supercharger::{Engine, EngineConfig};

/// The paper's correctness requirement (§2): the controller's decision
/// process must agree with the router's, otherwise its backup-groups
/// would protect the wrong primary. We feed identical provider feeds to
/// (a) a Loc-RIB configured with R1's import policy and (b) the engine,
/// and compare the (best, second) pair for every prefix.
#[test]
fn controller_ranks_exactly_like_the_router() {
    let prefixes = 3_000u32;
    let universe = prefix_universe(prefixes, 11);
    let feeds = [
        (
            IP_R2,
            200u32,
            generate_feed_for(&FeedConfig::new(prefixes, 11, IP_R2, 65002), &universe),
        ),
        (
            IP_R3,
            100u32,
            generate_feed_for(&FeedConfig::new(prefixes, 11, IP_R3, 65003), &universe),
        ),
    ];

    // (a) The router's view.
    let mut router_rib = LocRib::new();
    for (peer, local_pref, feed) in &feeds {
        for upd in feed {
            let attrs = upd.attrs.as_ref().unwrap();
            for pfx in &upd.nlri {
                router_rib.update(Route {
                    prefix: *pfx,
                    attrs: attrs.clone(),
                    from: PeerInfo {
                        peer: *peer,
                        router_id: *peer,
                        ebgp: true,
                        igp_cost: 0,
                    },
                    local_pref: *local_pref,
                });
            }
        }
    }

    // (b) The controller's view.
    let mut engine = Engine::new(EngineConfig::new(
        "10.0.200.0/24".parse().unwrap(),
        vec![
            PeerSpec {
                id: IP_R2,
                mac: MAC_R2,
                switch_port: 2,
                local_pref: 200,
                router_id: IP_R2,
            },
            PeerSpec {
                id: IP_R3,
                mac: MAC_R3,
                switch_port: 3,
                local_pref: 100,
                router_id: IP_R3,
            },
        ],
    ));
    for (peer, _, feed) in &feeds {
        for upd in feed {
            engine.process_update(*peer, upd);
        }
    }

    assert_eq!(router_rib.prefix_count(), engine.rib().prefix_count());
    for (pfx, router_cands) in router_rib.iter() {
        let engine_cands = engine.rib().candidates(pfx);
        assert_eq!(router_cands.len(), engine_cands.len(), "{pfx}");
        for (r, e) in router_cands.iter().zip(engine_cands) {
            assert_eq!(r.from.peer, e.from.peer, "ranking disagrees at {pfx}");
        }
        // And the ranking is internally consistent with compare_routes.
        for pair in engine_cands.windows(2) {
            assert_ne!(
                compare_routes(&pair[1], &pair[0]),
                std::cmp::Ordering::Less,
                "candidate list must be sorted best-first at {pfx}"
            );
        }
    }
}

/// The whole lab — router, switch, controller, traffic — is a pure
/// function of its seed. Two runs must produce identical per-flow
/// measurements; a different seed must not.
#[test]
fn lab_is_deterministic_from_its_seed() {
    let cfg = LabConfig {
        mode: Mode::Supercharged,
        prefixes: 400,
        flows: 20,
        seed: 99,
        ..LabConfig::default()
    };
    let a = run_convergence_trial(cfg.clone());
    let b = run_convergence_trial(cfg.clone());
    assert_eq!(a.per_flow, b.per_flow, "same seed, same measurements");
    assert_eq!(a.detected_at, b.detected_at);

    let c = run_convergence_trial(LabConfig { seed: 100, ..cfg });
    assert_ne!(
        a.per_flow, c.per_flow,
        "different seed shifts the (jittered) measurements"
    );
}

/// Facade quickstart: the README's advertised flow compiles and works.
#[test]
fn facade_quickstart_flow() {
    let cfg = LabConfig {
        mode: Mode::Supercharged,
        prefixes: 200,
        flows: 10,
        seed: 5,
        ..LabConfig::default()
    };
    let report = run_convergence_trial(cfg);
    let stats = report.stats();
    assert!(stats.max <= SimDuration::from_millis(150));
    assert_eq!(report.unrecovered, 0);
    // Facade type re-exports line up.
    let _mac: MacAddr = supercharged_router::net::MacAddr::virtual_mac(1);
    let _ = supercharged_router::openflow::FlowMatch::dst_mac(_mac);
}

/// BFD disabled: the supercharged router falls back to hold-timer
/// detection — still prefix-independent, but detection dominates. This
/// pins down *why* the paper runs BFD.
#[test]
fn without_bfd_detection_dominates_but_stays_prefix_independent() {
    let cfg = LabConfig {
        mode: Mode::Supercharged,
        prefixes: 300,
        flows: 10,
        seed: 13,
        bfd: false,
        ..LabConfig::default()
    };
    let mut lab = supercharged_router::lab::ConvergenceLab::build(cfg);
    lab.run_until_converged();
    let link = lab.r2_link;
    let fail_at = lab.world.now() + SimDuration::from_secs(1);
    lab.world
        .schedule(fail_at, move |w| w.set_link_up(link, false));
    // Hold time is 90s: no failover for a long while...
    lab.world.run_until(fail_at + SimDuration::from_secs(30));
    let ctrl = lab
        .world
        .node::<supercharged_router::supercharger::Controller>(lab.controllers[0]);
    assert!(
        ctrl.events.iter().all(|(_, e)| !matches!(
            e,
            supercharged_router::supercharger::controller::ControllerEvent::FailoverIssued { .. }
        )),
        "no BFD: the failure cannot have been detected yet"
    );
}
