//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build container cannot reach crates.io. This stand-in keeps the
//! bench sources compiling and produces honest (if statistically
//! unsophisticated) numbers: each benchmark runs a short warm-up, then a
//! fixed number of timed iterations, and prints the per-iteration mean
//! and min. No HTML reports, no outlier analysis, no comparison to
//! saved baselines.

use std::time::{Duration, Instant};

/// How many timed iterations each benchmark runs.
const MEASURE_ITERS: u32 = 200;
const WARMUP_ITERS: u32 = 20;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-iteration timing driver handed to `bench_function` closures.
pub struct Bencher {
    /// Mean and minimum per-iteration time of the last `iter` call.
    last: Option<(Duration, Duration)>,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher { last: None }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..MEASURE_ITERS {
            let t = Instant::now();
            black_box(routine());
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last = Some((total / MEASURE_ITERS, min));
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS.min(5) {
            black_box(routine(setup()));
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last = Some((total / MEASURE_ITERS, min));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(group: Option<&str>, name: &str, throughput: Option<Throughput>, b: &Bencher) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let Some((mean, min)) = b.last else {
        println!("{full:<40} (no measurement)");
        return;
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{full:<40} mean {:>10}   min {:>10}{rate}",
        fmt_duration(mean),
        fmt_duration(min)
    );
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(Some(&self.name), &name.into(), self.throughput, &b);
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(None, &name.into(), None, &b);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
