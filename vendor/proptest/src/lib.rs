//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container cannot reach crates.io, so this crate provides
//! the same *interface* (the `proptest!` macro, `Strategy`, `any`,
//! `prop_map`, `prop_oneof!`, `collection::vec`, `option::of`, `Just`,
//! `prop_assert*`) with a simpler engine: each test case draws values
//! directly from a deterministic RNG seeded from the test's name, runs
//! the body, and reports the failing inputs. There is **no shrinking**
//! — a failure prints the full generated inputs instead.
//!
//! Semantics the workspace's property tests rely on and that are kept:
//! deterministic replay (fixed seed per test), uniform coverage of
//! integer domains, configurable case count via
//! `ProptestConfig::with_cases`.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies (re-exported for macro use).
    pub type TestRng = SmallRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// `.prop_map(f)` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T: Debug> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_strategy_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_tuple {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_strategy_tuple!(A / 0);
    impl_strategy_tuple!(A / 0, B / 1);
    impl_strategy_tuple!(A / 0, B / 1, C / 2);
    impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3);
    impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
    impl_strategy_tuple!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8
    );
    impl_strategy_tuple!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9
    );
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end);
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            let (lo, hi) = r.into_inner();
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    pub struct OptionStrategy<S>(S);

    /// `Option<T>` strategy: `None` a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    /// Runner configuration (subset of the real `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed test case (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    /// Seed a deterministic per-test RNG from the test's name.
    pub fn rng_for(test_name: &str, case: u64) -> super::strategy::TestRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SeedableRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

pub mod prelude {
    pub use crate::collection::vec as prop_vec;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::rng_for(stringify!($name), case);
                    let mut __inputs: Vec<String> = Vec::new();
                    $(
                        let generated = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                        __inputs.push(format!("{} = {:?}", stringify!($pat), generated));
                        let $pat = generated;
                    )*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {}/{} failed: {}\n(no shrinking; inputs: {})",
                            case + 1, config.cases, e.0, __inputs.join(", "),
                        );
                    }
                }
            }
        )*
    };
}
