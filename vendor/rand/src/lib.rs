//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `SmallRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen`, `gen_range`, `gen_bool`.
//!
//! The container this repo builds in has no access to crates.io, so the
//! real crate cannot be fetched. The stand-in keeps the same *contract*
//! the workspace depends on — a deterministic, seedable, decent-quality
//! generator — not the real crate's exact output streams. All
//! determinism tests in the workspace compare runs of *this* generator
//! against itself, never against golden values from crates.io `rand`.
//!
//! Algorithm: xoshiro256++ seeded via splitmix64 (the same construction
//! `SmallRng` uses on 64-bit targets).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A type samplable from the "standard" distribution: uniform over the
/// whole domain for integers, uniform in `[0, 1)` for floats.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Integer types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (inclusive). `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Widening multiply keeps the modulo bias negligible for
                // any span this workspace draws from.
                let draw = <u128 as Standard>::sample(rng) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + <f64 as Standard>::sample(rng) * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                <$t>::sample_inclusive(rng, self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                <$t>::sample_inclusive(rng, lo, hi)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        f64::sample_inclusive(rng, self.start, self.end)
    }
}

/// The user-facing extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5..=6u64);
            assert!((5..=6).contains(&w));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
        // Both endpoints of small ranges are reachable.
        let hits: std::collections::HashSet<u8> = (0..100).map(|_| r.gen_range(0..2u8)).collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((0.28..0.32).contains(&frac), "{frac}");
    }
}
